(** Loss-of-decoupling analysis (paper §4).

    Finds, for the set [A] of loads that cannot be trivially prefetched,
    every memory operation with a data LoD (Definition 4.1: a def-use path
    from some a ∈ A to the operation's address) or a control LoD
    (Definition 4.2: the operation is transitively control-dependent on a
    branch whose condition depends on some a ∈ A), the source blocks of
    those control dependencies, and the §5.1.2 chain heads speculation
    starts from. *)

open Dae_ir

(** How the [A] set is chosen (the paper notes it can be expanded or
    narrowed per hardware context). *)
type policy =
  | Raw_hazard_loads
      (** loads from arrays the function also stores to (default) *)
  | All_loads  (** e.g. an AGU with no control-flow support *)
  | Loads_from of string list  (** preserve decoupling for these arrays only *)

type mem_op = {
  instr_id : int;
  mem : Instr.mem_id;
  block : int;
  is_store : bool;
  arr : string;
}

type t = {
  a_values : int list;  (** SSA ids of the A-set loads *)
  mem_ops : mem_op list;
  data_lod : (Instr.mem_id * int) list;  (** (op, offending A-load id) *)
  control_lod : (Instr.mem_id * int list) list;  (** (op, source blocks) *)
  src_blocks : int list;
  chain_heads : int list;  (** §5.1.2-filtered sources *)
  cdep : Control_dep.t;
}

val collect_mem_ops : Func.t -> mem_op list
val a_set : Func.t -> policy -> int list
val analyze : ?policy:policy -> Func.t -> t

(** Ops whose decoupling is blocked by a data LoD — speculation cannot
    recover these (§4); they stay synchronized. *)
val data_blocked : t -> Instr.mem_id list

val has_control_lod : t -> bool
val has_data_lod : t -> bool

(** Chain heads a given source block's requests are speculated from. *)
val heads_for_source : t -> int -> int list

val pp : Format.formatter -> t -> unit
