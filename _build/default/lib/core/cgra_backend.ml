(* Stream-dataflow CGRA lowering (paper §7.2).

   The CGRA of Nowatzki et al. (ISCA'17, "stream-dataflow acceleration")
   decouples address generation into stream commands at compile time; all
   communication is FIFO-based, control flow is handled with predication,
   and an SD_Clean_Port command throws away a value from an output port —
   the paper points at it as the predicated-store hook our poison maps to.

   This backend lowers a compiled pipeline to that model:

   - the AGU becomes a list of stream commands (SD_Mem_Port / SD_Port_Mem),
     each carrying the predicate under which its requests issue — after
     speculation these predicates are [1] (always), which is the §7.2
     claim: the transformation removes LoD when mapping to CGRAs;
   - the CU becomes a predicated dataflow graph: one node per instruction,
     predicates derived from the path conditions of its block; poison
     lowers to SD_Clean_Port under the mis-speculation predicate.

   Predicates are produced symbolically (this is a code generator, not an
   executor): the predicate of a block is the disjunction over incoming
   edges of [pred(src) ∧ edge condition]. *)

open Dae_ir

type predicate = string (* symbolic, e.g. "1", "(r5 & !r9)" *)

type stream_command = {
  cmd : string; (* SD_Mem_Port (loads) / SD_Port_Mem (stores) *)
  array : string;
  address : string;
  port : int; (* the mem id doubles as the port number *)
  predicate : predicate;
}

type df_node = {
  node_op : string;
  node_dest : string;
  node_args : string list;
  node_pred : predicate;
}

type t = {
  streams : stream_command list; (* the AGU, as stream commands *)
  dataflow : df_node list; (* the CU, as a predicated dataflow graph *)
  clean_ports : int; (* number of SD_Clean_Port nodes (poisons) *)
  fully_decoupled : bool; (* every stream command unconditional? *)
}

let reg v = Fmt.str "r%d" v

let operand = function
  | Types.Var v -> reg v
  | Types.Cst (Types.Int n) -> string_of_int n
  | Types.Cst (Types.Bool b) -> if b then "1" else "0"

(* Symbolic path predicates per block, over the loop-body DAG. The loop
   header (and anything executed every iteration) gets "1". *)
let block_predicates (f : Func.t) : (int, predicate) Hashtbl.t =
  let loops = Loops.compute f in
  let preds_tbl = Func.predecessors f in
  let result : (int, predicate) Hashtbl.t = Hashtbl.create 16 in
  let conj a b = if a = "1" then b else if b = "1" then a else a ^ " & " ^ b in
  let edge_condition src dst =
    (* a loop header's branch into its own body is the trip condition, not
       a per-iteration predicate: stream commands and dataflow nodes fire
       once per iteration unconditionally *)
    let header_into_body =
      Loops.is_header loops src
      &&
      match Loops.loop_of_header loops src with
      | Some l -> List.mem dst l.Loops.body
      | None -> false
    in
    if header_into_body then "1"
    else
      match (Func.block f src).Block.term with
      | Block.Br _ -> "1"
      | Block.Cond_br (c, yes, no) ->
      if yes = dst && no = dst then "1"
      else if yes = dst then operand c
      else "!" ^ operand c
    | Block.Switch (c, targets) ->
      let hits =
        List.filteri (fun _ t -> t = dst) targets |> List.length
      in
      if hits = List.length targets then "1"
      else
        String.concat " | "
          (List.concat
             (List.mapi
                (fun k t ->
                  if t = dst then [ Fmt.str "%s==%d" (operand c) k ] else [])
                targets))
    | Block.Ret _ -> "1"
  in
  let rec pred bid =
    match Hashtbl.find_opt result bid with
    | Some p -> p
    | None ->
      (* break recursion at loop headers and the entry: both execute
         unconditionally within their scope *)
      if bid = f.Func.entry || Loops.is_header loops bid then begin
        Hashtbl.replace result bid "1";
        "1"
      end
      else begin
        Hashtbl.replace result bid "1" (* defensive cycle cut *);
        let incoming =
          List.filter_map
            (fun p ->
              if Loops.is_backedge loops ~src:p ~dst:bid then None
              else Some (conj (pred p) (edge_condition p bid)))
            (try Hashtbl.find preds_tbl bid with Not_found -> [])
        in
        let p =
          match List.sort_uniq compare incoming with
          | [] -> "1"
          | [ one ] -> one
          | many ->
            if List.mem "1" many then "1"
            else "(" ^ String.concat ") | (" many ^ ")"
        in
        Hashtbl.replace result bid p;
        p
      end
  in
  List.iter (fun bid -> ignore (pred bid)) f.Func.layout;
  result

let lower_agu (agu : Func.t) : stream_command list * bool =
  let preds = block_predicates agu in
  let commands = ref [] in
  List.iter
    (fun bid ->
      let p = try Hashtbl.find preds bid with Not_found -> "1" in
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Send_ld_addr { arr; idx; mem } ->
            commands :=
              { cmd = "SD_Mem_Port"; array = arr; address = operand idx;
                port = mem; predicate = p }
              :: !commands
          | Instr.Send_st_addr { arr; idx; mem } ->
            commands :=
              { cmd = "SD_Port_Mem"; array = arr; address = operand idx;
                port = mem; predicate = p }
              :: !commands
          | _ -> ())
        (Func.block agu bid).Block.instrs)
    agu.Func.layout;
  let cmds = List.rev !commands in
  (cmds, List.for_all (fun c -> c.predicate = "1") cmds)

let lower_cu (cu : Func.t) : df_node list * int =
  let preds = block_predicates cu in
  let nodes = ref [] in
  let cleans = ref 0 in
  let emit node_op node_dest node_args node_pred =
    nodes := { node_op; node_dest; node_args; node_pred } :: !nodes
  in
  List.iter
    (fun bid ->
      let p = try Hashtbl.find preds bid with Not_found -> "1" in
      let b = Func.block cu bid in
      List.iter
        (fun (phi : Block.phi) ->
          emit "PHI" (reg phi.Block.pid)
            (List.map (fun (src, op) -> Fmt.str "bb%d:%s" src (operand op))
               phi.Block.incoming)
            p)
        b.Block.phis;
      List.iter
        (fun (i : Instr.t) ->
          match i.Instr.kind with
          | Instr.Binop (op, a, b') ->
            emit (Instr.string_of_binop op) (reg i.Instr.id)
              [ operand a; operand b' ] p
          | Instr.Cmp (c, a, b') ->
            emit ("cmp_" ^ Instr.string_of_cmp c) (reg i.Instr.id)
              [ operand a; operand b' ] p
          | Instr.Select (c, a, b') ->
            emit "sel" (reg i.Instr.id) [ operand c; operand a; operand b' ] p
          | Instr.Not a -> emit "not" (reg i.Instr.id) [ operand a ] p
          | Instr.Consume_val { mem; _ } ->
            emit "SD_Port_Read" (reg i.Instr.id) [ Fmt.str "port%d" mem ] p
          | Instr.Produce_val { value; mem; _ } ->
            emit "SD_Port_Write" (Fmt.str "port%d" mem) [ operand value ] p
          | Instr.Poison { mem; _ } ->
            incr cleans;
            emit "SD_Clean_Port" (Fmt.str "port%d" mem) [] p
          | Instr.Load _ | Instr.Store _ | Instr.Send_ld_addr _
          | Instr.Send_st_addr _ ->
            ())
        b.Block.instrs)
    cu.Func.layout;
  (List.rev !nodes, !cleans)

let lower (p : Pipeline.t) : t =
  let streams, fully_decoupled = lower_agu p.Pipeline.agu in
  let dataflow, clean_ports = lower_cu p.Pipeline.cu in
  { streams; dataflow; clean_ports; fully_decoupled }

let pp ppf (t : t) =
  Fmt.pf ppf "; === stream commands (AGU) ===@.";
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-12s %s[%s] -> port%d  [pred: %s]@." c.cmd c.array
        c.address c.port c.predicate)
    t.streams;
  Fmt.pf ppf "; === predicated dataflow (CU) ===@.";
  List.iter
    (fun n ->
      Fmt.pf ppf "  %-14s %s <- %s  [pred: %s]@." n.node_op n.node_dest
        (String.concat ", " n.node_args)
        n.node_pred)
    t.dataflow;
  Fmt.pf ppf "; %d SD_Clean_Port node(s); streams %s@." t.clean_ports
    (if t.fully_decoupled then "fully decoupled" else "predicated")
