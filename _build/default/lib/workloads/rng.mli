(** Deterministic splitmix64-style PRNG: all workload data derives from
    fixed seeds so every run and every architecture sees identical inputs
    (and streams stay stable across OCaml versions, unlike Stdlib.Random).
*)

type t

val create : int -> t
val next : t -> int64

(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Bernoulli with the given probability in percent. *)
val percent : t -> int -> bool

(** Heavy-tailed (Zipf-ish) integer in [0, bound) — hub-node degrees. *)
val skewed : t -> int -> int
