(** Randomized structured kernel generator for the property tests: nested
    and sequential data-dependent guards over several stored arrays, with
    addresses from the induction variable or read-only index arrays —
    everything inside the supported envelope (reducible canonical loops,
    hoistable address chains, no data LoD). *)

open Dae_ir

type t = {
  func : Func.t;
  mem : unit -> Interp.Memory.t;
  args : (string * Types.value) list;
  seed : int;
}

(** [inner_loops] permits small nested counted loops inside guards —
    Algorithm 1 does not enter them, leaving their requests synchronized
    (partial decoupling), which correctness properties must survive. *)
val generate :
  ?seed:int ->
  ?n:int ->
  ?stored:int ->
  ?index:int ->
  ?max_stmts:int ->
  ?inner_loops:bool ->
  unit ->
  t
