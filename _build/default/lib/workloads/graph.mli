(** Directed graphs in edge-list form, a deterministic synthetic generator
    scale-matched to the paper's email-Eu-core dataset (1005 nodes, 25,571
    edges, heavy-tailed degrees — see DESIGN.md "Substitutions"), and the
    reference algorithms the graph kernels are checked against. *)

type t = {
  nodes : int;
  src : int array;
  dst : int array;
  weight : int array;
}

val edges : t -> int
val generate : seed:int -> nodes:int -> edges:int -> max_weight:int -> t

(** 1005 nodes, 25,571 edges — the paper's graph scale. *)
val email_eu_core_like : unit -> t

val small : ?seed:int -> ?nodes:int -> ?edges:int -> unit -> t

(** Level-synchronous BFS by whole-edge-list relaxation (exactly the bfs
    kernel's per-invocation semantics). Returns distances and levels. *)
val bfs_reference : t -> source:int -> int array * int

(** "Infinity" distance used by sssp. *)
val inf : int

(** Bellman-Ford to fixpoint. Returns distances and rounds. *)
val sssp_reference : t -> source:int -> int array * int

(** Brandes forward pass: BFS levels plus shortest-path counts. *)
val bc_reference : t -> source:int -> int array * int array * int
