lib/workloads/gen.mli: Dae_ir Func Interp Types
