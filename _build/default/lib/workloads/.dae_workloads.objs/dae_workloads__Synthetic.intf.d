lib/workloads/synthetic.mli: Dae_ir Func Kernels
