lib/workloads/rng.mli:
