lib/workloads/gen.ml: Array Builder Dae_ir Fmt Func Instr Interp List Rng Types
