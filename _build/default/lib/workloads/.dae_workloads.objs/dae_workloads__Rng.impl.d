lib/workloads/rng.ml: Int64
