lib/workloads/synthetic.ml: Array Builder Dae_ir Fmt Func Instr Interp Kernels Rng Types
