lib/workloads/misspec.mli: Kernels
