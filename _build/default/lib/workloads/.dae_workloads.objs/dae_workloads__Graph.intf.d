lib/workloads/graph.mli:
