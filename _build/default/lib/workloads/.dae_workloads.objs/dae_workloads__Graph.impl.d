lib/workloads/graph.ml: Array Rng
