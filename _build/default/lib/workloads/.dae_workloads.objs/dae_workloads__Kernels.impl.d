lib/workloads/kernels.ml: Array Builder Dae_ir Dae_sim Fmt Func Graph Instr Interp List Rng Types
