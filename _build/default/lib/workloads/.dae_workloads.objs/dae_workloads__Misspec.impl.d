lib/workloads/misspec.ml: Array Dae_ir Fmt Interp Kernels Rng Types
