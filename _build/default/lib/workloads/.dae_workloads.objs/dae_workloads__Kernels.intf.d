lib/workloads/kernels.mli: Dae_ir Dae_sim Func Graph Interp
