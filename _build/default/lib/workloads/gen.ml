(* Randomized structured kernel generator.

   Produces kernels with the shapes the speculation transformation must
   handle — nested and sequential data-dependent guards, multiple stored
   arrays, guards at different nesting depths, stores and loads mixed
   across branches — while staying inside the supported envelope:
   reducible canonical loops, hoistable (pure or relocatable-consume)
   address chains, no data LoD. The qcheck properties in the test suite
   drive Pipeline + Exec with these and assert sequential consistency,
   stream matching and deadlock freedom on every sample (the dynamic form
   of the paper's §6 proof). *)

open Dae_ir

type t = {
  func : Func.t;
  mem : unit -> Interp.Memory.t;
  args : (string * Types.value) list;
  seed : int;
}

type ctx = {
  b : Builder.t;
  rng : Rng.t;
  n : int; (* loop trip count and array size *)
  mutable depth : int;
  mutable stmts_left : int;
  (* values loaded from stored arrays this iteration: guard candidates *)
  mutable guard_values : Types.operand list;
  (* pure i32 values usable as data *)
  mutable data_values : Types.operand list;
  stored_arrays : string list;
  index_arrays : string list; (* read-only, entries in [0, n) *)
  i : Types.operand;
  inner_loops : bool;
}

let pick rng xs = List.nth xs (Rng.int rng (List.length xs))

(* A random in-bounds address: the induction variable or an index-array
   element (itself a decoupled load, exercising consume relocation). *)
let gen_addr (c : ctx) : Types.operand =
  if Rng.percent c.rng 55 then c.i
  else Builder.load c.b (pick c.rng c.index_arrays) c.i

let gen_value (c : ctx) : Types.operand =
  match Rng.int c.rng 4 with
  | 0 -> Builder.int (Rng.int c.rng 100)
  | 1 -> pick c.rng c.data_values
  | 2 ->
    Builder.add c.b (pick c.rng c.data_values)
      (Builder.int (1 + Rng.int c.rng 9))
  | _ ->
    Builder.binop c.b Instr.Xor (pick c.rng c.data_values)
      (pick c.rng c.data_values)

let gen_load (c : ctx) =
  let arr = pick c.rng c.stored_arrays in
  let v = Builder.load c.b arr (gen_addr c) in
  c.guard_values <- v :: c.guard_values;
  c.data_values <- v :: c.data_values

let gen_store (c : ctx) =
  let arr = pick c.rng c.stored_arrays in
  Builder.store c.b arr ~idx:(gen_addr c) ~value:(gen_value c)

(* A small nested counted loop. Algorithm 1 never enters loops other than
   the innermost loop containing the speculation source, so requests in
   here stay conditional when guarded from outside — correctness must hold
   regardless. *)
let gen_inner_loop (c : ctx) =
  let trips = 2 + Rng.int c.rng 3 in
  let saved_guards = c.guard_values and saved_data = c.data_values in
  let (_ : Types.operand list) =
    Builder.counted_loop c.b ~n:(Builder.int trips) (fun b ~i:j ~carried:_ ->
        let arr = pick c.rng c.stored_arrays in
        let addr =
          (* stay in bounds: (i + j) mod n via srem on non-negatives *)
          Builder.binop b Instr.Srem
            (Builder.add b c.i j)
            (Builder.int c.n)
        in
        let v = Builder.load b arr addr in
        if Rng.bool c.rng then
          Builder.store b arr ~idx:addr
            ~value:(Builder.add b v (Builder.int 1));
        [])
  in
  c.guard_values <- saved_guards;
  c.data_values <- saved_data

(* A guard over a value loaded from a stored array — the LoD-creating
   construct. Roughly half the guards get an else branch. *)
let rec gen_guard (c : ctx) =
  let v = pick c.rng c.guard_values in
  let cond =
    Builder.cmp c.b
      (pick c.rng [ Instr.Slt; Instr.Sgt; Instr.Eq; Instr.Ne ])
      v
      (Builder.int (Rng.int c.rng 100))
  in
  c.depth <- c.depth + 1;
  (* values defined inside a branch must not leak to the other branch or
     the join: snapshot and restore the operand pools *)
  let snapshot () = (c.guard_values, c.data_values) in
  let restore (g, d) =
    c.guard_values <- g;
    c.data_values <- d
  in
  let saved = snapshot () in
  if Rng.percent c.rng 45 then
    Builder.if_ c.b cond
      ~then_:(fun _ ->
        gen_stmts c;
        restore saved)
      ~else_:(fun _ ->
        gen_stmts c;
        restore saved)
      ()
  else
    Builder.if_ c.b cond
      ~then_:(fun _ ->
        gen_stmts c;
        restore saved)
      ();
  c.depth <- c.depth - 1

and gen_stmt (c : ctx) =
  c.stmts_left <- c.stmts_left - 1;
  match Rng.int c.rng 12 with
  | 0 | 1 | 2 -> gen_load c
  | 3 | 4 | 5 -> gen_store c
  | 10 when c.inner_loops && c.depth >= 1 && c.depth < 3 ->
    (* a nested loop inside a data-dependent guard: its requests cannot be
       hoisted (Algorithm 1 stays in the innermost loop of the source) *)
    gen_inner_loop c
  | _ when c.depth < 3 -> gen_guard c
  | _ -> gen_store c

and gen_stmts (c : ctx) =
  let k = 1 + Rng.int c.rng 2 in
  for _ = 1 to k do
    if c.stmts_left > 0 then gen_stmt c
  done

let generate ?(seed = 0) ?(n = 24) ?(stored = 2) ?(index = 2)
    ?(max_stmts = 14) ?(inner_loops = false) () : t =
  let rng = Rng.create seed in
  let stored_arrays = List.init stored (fun k -> Fmt.str "s%d" k) in
  let index_arrays = List.init index (fun k -> Fmt.str "ix%d" k) in
  let b =
    Builder.create ~name:(Fmt.str "gen%d" seed) ~params:[ "n" ]
  in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let c =
          {
            b;
            rng;
            n;
            depth = 0;
            stmts_left = max_stmts;
            guard_values = [];
            data_values = [ i ];
            stored_arrays;
            index_arrays;
            i;
            inner_loops;
          }
        in
        (* every iteration starts by loading each stored array once so
           guards always have an LoD candidate *)
        List.iter
          (fun arr ->
            let v = Builder.load b arr i in
            c.guard_values <- v :: c.guard_values;
            c.data_values <- v :: c.data_values)
          stored_arrays;
        while c.stmts_left > 0 do
          gen_stmt c
        done;
        []);
  in
  let func = Builder.seal b in
  let mem () =
    let data_rng = Rng.create (seed lxor 0x5EED) in
    Interp.Memory.create
      (List.map
         (fun arr -> (arr, Array.init n (fun _ -> Rng.int data_rng 100)))
         stored_arrays
      @ List.map
          (fun arr -> (arr, Array.init n (fun _ -> Rng.int data_rng n)))
          index_arrays)
  in
  { func; mem; args = [ ("n", Types.Vint n) ]; seed }
