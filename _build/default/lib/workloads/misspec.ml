(* Mis-speculation rate instrumentation (paper Table 2).

   The paper instruments the inputs of hist, thr and mm so the
   mis-speculation rate sweeps 0–100%, then shows the SPEC cycle count
   stays flat. We generate inputs targeting each rate:

   - thr: exactly rate% of pixels at or below the threshold (guard false →
     store killed);
   - hist: rate% of buckets pre-saturated at the cap; hits to the rest
     never saturate (cap effectively infinite for them), so the kill
     fraction equals the hit mass on saturated buckets;
   - mm: endpoints pre-matched with probability q = 1 − sqrt(1 − r), so an
     edge is killed (either endpoint taken) with probability ≈ r.

   The achieved rate is whatever the machine measures; Table 2 reports it
   alongside the cycles. *)

open Dae_ir

let vint n = Types.Vint n

let thr ?(n = 1000) ?(seed = 41) ~rate_percent () : Kernels.t =
  let rng = Rng.create (seed + rate_percent) in
  let threshold = 100 in
  let pix =
    Array.init n (fun _ ->
        if Rng.percent rng rate_percent then Rng.int rng (threshold + 1)
        else threshold + 1 + Rng.int rng 100)
  in
  {
    Kernels.name = Fmt.str "thr@%d%%" rate_percent;
    description = Fmt.str "thr with ~%d%% mis-speculation" rate_percent;
    build = Kernels.build_thr;
    init_mem = (fun () -> Interp.Memory.create [ ("pix", pix) ]);
    invocations = (fun () -> [ [ ("n", vint n); ("thr", vint threshold) ] ]);
    check =
      (fun mem ->
        let expected = Array.map (fun p -> if p > threshold then 0 else p) pix in
        if Interp.Memory.array mem "pix" = expected then Ok ()
        else Error "thr misspec variant: memory differs");
  }

let hist ?(n = 1000) ?(buckets = 64) ?(seed = 43) ~rate_percent () : Kernels.t
    =
  let rng = Rng.create (seed + rate_percent) in
  let cap = 1_000_000 in
  let bucket = Array.init n (fun _ -> Rng.int rng buckets) in
  let hist0 =
    Array.init buckets (fun _ ->
        if Rng.percent rng rate_percent then cap else 0)
  in
  {
    Kernels.name = Fmt.str "hist@%d%%" rate_percent;
    description = Fmt.str "hist with ~%d%% mis-speculation" rate_percent;
    build = Kernels.build_hist;
    init_mem =
      (fun () ->
        Interp.Memory.create [ ("bucket", bucket); ("hist", Array.copy hist0) ]);
    invocations = (fun () -> [ [ ("n", vint n); ("cap", vint cap) ] ]);
    check =
      (fun mem ->
        let expected = Array.copy hist0 in
        Array.iter
          (fun b -> if expected.(b) < cap then expected.(b) <- expected.(b) + 1)
          bucket;
        if Interp.Memory.array mem "hist" = expected then Ok ()
        else Error "hist misspec variant: memory differs");
  }

(* mm: a sparse bipartite graph (few edges per node) keeps the *dynamic*
   match rate low, so the kill rate tracks the pre-matched fraction. *)
let mm ?(left = 2000) ?(right = 2000) ?(m = 600) ?(seed = 47) ~rate_percent ()
    : Kernels.t =
  let rng = Rng.create (seed + rate_percent) in
  let nodes = left + right in
  let esrc = Array.init m (fun _ -> Rng.int rng left) in
  let edst = Array.init m (fun _ -> left + Rng.int rng right) in
  (* probability that one endpoint is pre-matched *)
  let q_percent =
    let r = float_of_int rate_percent /. 100. in
    int_of_float (100. *. (1. -. sqrt (max 0. (1. -. r)))) |> min 100 |> max 0
  in
  let mate0 =
    Array.init nodes (fun k ->
        if Rng.percent rng q_percent then nodes + k (* dummy partner *)
        else -1)
  in
  {
    Kernels.name = Fmt.str "mm@%d%%" rate_percent;
    description = Fmt.str "mm with ~%d%% mis-speculation" rate_percent;
    build = Kernels.build_mm;
    init_mem =
      (fun () ->
        Interp.Memory.create
          [ ("esrc", esrc); ("edst", edst); ("mate", Array.copy mate0) ]);
    invocations = (fun () -> [ [ ("m", vint m) ] ]);
    check =
      (fun mem ->
        let expected = Array.copy mate0 in
        for e = 0 to m - 1 do
          let u = esrc.(e) and v = edst.(e) in
          if expected.(u) < 0 && expected.(v) < 0 then begin
            expected.(u) <- v;
            expected.(v) <- u
          end
        done;
        if Interp.Memory.array mem "mate" = expected then Ok ()
        else Error "mm misspec variant: memory differs");
  }

(* Table 2's sweep points. *)
let rates = [ 0; 20; 40; 60; 80; 100 ]
