(** Table 2 instrumentation: inputs for hist, thr and mm targeting a given
    mis-speculation rate (the achieved rate is whatever the machine
    measures). *)

val thr : ?n:int -> ?seed:int -> rate_percent:int -> unit -> Kernels.t

val hist :
  ?n:int -> ?buckets:int -> ?seed:int -> rate_percent:int -> unit -> Kernels.t

val mm :
  ?left:int -> ?right:int -> ?m:int -> ?seed:int -> rate_percent:int ->
  unit -> Kernels.t

(** The sweep points of Table 2. *)
val rates : int list
