(* The §8.3.1 synthetic nested-if template:

     if x > c1 then
       store_1
       if x > c2 then
         store_2
         if x > c3 then ...

   With n nesting levels (one store per level) the SPEC transformation
   produces n poison blocks and n(n+1)/2 poison calls — the knob behind
   Figure 7's area/performance-overhead sweep. *)

open Dae_ir

(* Build the kernel with [depth] nesting levels. Stores hit a[i]; the
   guard value is a[i] itself, so every level is an LoD source chained to
   the outermost one. *)
let build ~depth () : Func.t =
  let b = Builder.create ~name:(Fmt.str "nested%d" depth) ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let x = Builder.load b "a" i in
        let rec nest level =
          if level <= depth then begin
            let c =
              Builder.cmp b Instr.Sgt x (Builder.int (level * 10))
            in
            Builder.if_ b c
              ~then_:(fun b ->
                Builder.store b "a" ~idx:i
                  ~value:(Builder.add b x (Builder.int level));
                nest (level + 1))
              ()
          end
        in
        nest 1;
        [])
  in
  Builder.seal b

(* Reference semantics: the guard value is loaded once per iteration, so
   every satisfied level stores [x + level] and the deepest one wins. *)
let reference ~depth (a : int array) : int array =
  Array.map
    (fun x ->
      let rec go level acc =
        if level <= depth && x > level * 10 then go (level + 1) (x + level)
        else acc
      in
      go 1 x)
    a

let workload ?(n = 200) ?(seed = 31) ?(pass_percent = 92) ~depth () :
    Kernels.t =
  (* Figure 7 measures the cost of the poison *machinery*, so most
     iterations should satisfy every guard (speculation mostly right) —
     with mostly-killed stores the comparison against the perfect-
     speculation ORACLE would instead measure the mis-speculation rate. *)
  let rng = Rng.create seed in
  let a0 =
    Array.init n (fun _ ->
        if Rng.percent rng pass_percent then
          (depth * 10) + 1 + Rng.int rng 50
        else Rng.int rng (depth * 10))
  in
  {
    Kernels.name = Fmt.str "nested%d" depth;
    description = Fmt.str "synthetic template, %d nesting levels" depth;
    build = (fun () -> build ~depth ());
    init_mem = (fun () -> Interp.Memory.create [ ("a", a0) ]);
    invocations = (fun () -> [ [ ("n", Types.Vint n) ] ]);
    check =
      (fun mem ->
        let got = Interp.Memory.array mem "a" in
        let expected = reference ~depth a0 in
        if got = expected then Ok ()
        else Error "synthetic nested template: memory differs from reference");
  }
