(* Deterministic splitmix64-style PRNG.

   All workload data is generated from fixed seeds so every run of the
   benchmarks (and every architecture within a run) sees identical inputs —
   a requirement for the paper's apples-to-apples comparisons. We do not
   use Stdlib.Random to keep the streams stable across OCaml versions. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next (t : t) : int64 =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform integer in [0, bound). *)
let int (t : t) bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool (t : t) = Int64.logand (next t) 1L = 1L

(* Bernoulli with probability p (in percent, 0-100). *)
let percent (t : t) p = int t 100 < p

(* Skewed (approximately Zipf-ish) integer in [0, bound): repeated halving
   concentrates mass on small values, giving graphs a heavy-tailed degree
   distribution like the paper's email-Eu-core. *)
let skewed (t : t) bound =
  let rec go b =
    if b <= 1 then 0
    else if bool t then int t b
    else go (b / 2)
  in
  go bound
