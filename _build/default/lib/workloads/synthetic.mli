(** The §8.3.1 synthetic nested-if template behind Figure 7: with [depth]
    nesting levels (one store per level) the SPEC transformation produces
    [depth] poison blocks and depth(depth+1)/2 poison calls. *)

open Dae_ir

val build : depth:int -> unit -> Func.t
val reference : depth:int -> int array -> int array

(** [pass_percent] controls how often every guard is satisfied (Figure 7
    measures the poison machinery, so speculation should be mostly right). *)
val workload :
  ?n:int -> ?seed:int -> ?pass_percent:int -> depth:int -> unit -> Kernels.t
