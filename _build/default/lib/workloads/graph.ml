(* Directed graphs in edge-list and CSR form.

   The paper evaluates bfs/bc/sssp on the real-world email-Eu-core graph
   (1005 nodes, 25,571 edges). That dataset is not available offline, so
   [email_eu_core_like] generates a deterministic synthetic graph with the
   same node and edge counts and a heavy-tailed degree distribution
   (DESIGN.md, "Substitutions"): what the kernels care about is scale and
   irregular, data-dependent neighbour access, both preserved. *)

type t = {
  nodes : int;
  src : int array; (* edge sources *)
  dst : int array; (* edge destinations *)
  weight : int array; (* edge weights, for sssp *)
}

let edges (g : t) = Array.length g.src

let generate ~seed ~nodes ~edges:m ~max_weight : t =
  let rng = Rng.create seed in
  let src = Array.make m 0 and dst = Array.make m 0 and weight = Array.make m 1 in
  for e = 0 to m - 1 do
    (* skewed sources model hub nodes; uniform destinations keep the graph
       connected enough for multi-level BFS *)
    let u = Rng.skewed rng nodes in
    let v = Rng.int rng nodes in
    src.(e) <- u;
    dst.(e) <- (if v = u then (v + 1) mod nodes else v);
    weight.(e) <- 1 + Rng.int rng max_weight
  done;
  { nodes; src; dst; weight }

let email_eu_core_like () =
  generate ~seed:0xEEC0 ~nodes:1005 ~edges:25571 ~max_weight:15

(* A small graph for unit tests. *)
let small ?(seed = 42) ?(nodes = 24) ?(edges = 80) () =
  generate ~seed ~nodes ~edges ~max_weight:9

(* --- reference algorithms (golden models for the kernels) ----------------- *)

(* Level-synchronous BFS by edge relaxation: one pass over all edges per
   level. Returns (dist array, number of levels until fixpoint). Matches
   exactly the kernel's per-invocation semantics. *)
let bfs_reference (g : t) ~source : int array * int =
  let dist = Array.make g.nodes (-1) in
  dist.(source) <- 0;
  let level = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for e = 0 to edges g - 1 do
      if dist.(g.src.(e)) = !level && dist.(g.dst.(e)) < 0 then begin
        dist.(g.dst.(e)) <- !level + 1;
        changed := true
      end
    done;
    incr level
  done;
  (dist, !level)

let inf = 1 lsl 29

(* Bellman-Ford rounds until fixpoint. Returns (dist, rounds). *)
let sssp_reference (g : t) ~source : int array * int =
  let dist = Array.make g.nodes inf in
  dist.(source) <- 0;
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < g.nodes do
    changed := false;
    for e = 0 to edges g - 1 do
      let du = dist.(g.src.(e)) in
      if du < inf then begin
        let nd = du + g.weight.(e) in
        if nd < dist.(g.dst.(e)) then begin
          dist.(g.dst.(e)) <- nd;
          changed := true
        end
      end
    done;
    incr rounds
  done;
  (dist, !rounds)

(* Forward pass of Brandes-style betweenness centrality from one source:
   BFS levels plus shortest-path counts (sigma). Matches the bc kernel. *)
let bc_reference (g : t) ~source : int array * int array * int =
  let dist = Array.make g.nodes (-1) in
  let sigma = Array.make g.nodes 0 in
  dist.(source) <- 0;
  sigma.(source) <- 1;
  let level = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    for e = 0 to edges g - 1 do
      let u = g.src.(e) and v = g.dst.(e) in
      if dist.(u) = !level then begin
        if dist.(v) < 0 then begin
          dist.(v) <- !level + 1;
          sigma.(v) <- sigma.(v) + sigma.(u);
          changed := true
        end
        else if dist.(v) = !level + 1 then begin
          sigma.(v) <- sigma.(v) + sigma.(u);
          changed := true
        end
      end
    done;
    incr level
  done;
  (dist, sigma, !level)
