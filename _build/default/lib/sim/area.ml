(* Analytical area model (ALMs).

   Substitutes the paper's Quartus place-and-route numbers (DESIGN.md,
   "Substitutions"). Every quantity that drives ALM usage in an
   HLS-generated accelerator is structural: datapath operators, scheduler
   complexity (∝ basic blocks and φ muxes), FIFO channels, and the LSQ.
   The weights below are calibrated so the *relationships* of Table 1 hold
   (STA < DAE < SPEC ≈ ORACLE; CU grows a few percent per poison block),
   not the absolute ALM counts of the Arria 10. *)

open Dae_ir

type weights = {
  base : int; (* host interface + memory system, shared by all units *)
  unit_base : int; (* per-unit controller *)
  per_alu : int; (* binop/cmp/select/not *)
  per_mem_op : int; (* load/store port logic *)
  per_channel_op : int; (* send/consume/produce endpoints *)
  per_poison : int; (* a poison is a 1-bit tagged push: far cheaper *)
  per_block : int; (* scheduler state *)
  per_poison_block : int; (* poison-only block: a narrow FSM state *)
  per_phi : int; (* mux *)
  per_fifo : int; (* channel buffering *)
  lsq_base : int;
  lsq_per_entry : int;
}

let default_weights =
  {
    base = 2400;
    unit_base = 700;
    per_alu = 32;
    per_mem_op = 110;
    per_channel_op = 55;
    per_poison = 10;
    per_block = 48;
    per_poison_block = 16;
    per_phi = 18;
    per_fifo = 40;
    lsq_base = 400;
    lsq_per_entry = 8;
  }

type breakdown = {
  agu : int;
  cu : int;
  du : int; (* FIFOs + LSQs *)
  total : int;
}

let instr_cost (w : weights) ?(ignore_poison = false) (i : Instr.t) =
  match i.Instr.kind with
  | Instr.Binop _ | Instr.Cmp _ | Instr.Select _ | Instr.Not _ -> w.per_alu
  | Instr.Load _ | Instr.Store _ -> w.per_mem_op
  | Instr.Send_ld_addr _ | Instr.Send_st_addr _ | Instr.Consume_val _
  | Instr.Produce_val _ ->
    w.per_channel_op
  | Instr.Poison _ -> if ignore_poison then 0 else w.per_poison

let func_area (w : weights) ?(ignore_poison = false) (f : Func.t) : int =
  List.fold_left
    (fun acc bid ->
      let b = Func.block f bid in
      let poison_only =
        b.Block.instrs <> []
        && List.for_all
             (fun (i : Instr.t) ->
               match i.Instr.kind with Instr.Poison _ -> true | _ -> false)
             b.Block.instrs
      in
      let block_cost =
        if poison_only then if ignore_poison then 0 else w.per_poison_block
        else w.per_block
      in
      acc + block_cost
      + (List.length b.Block.phis * w.per_phi)
      + List.fold_left
          (fun a i -> a + instr_cost w ~ignore_poison i)
          0 b.Block.instrs)
    0 f.Func.layout

(* STA: the whole kernel is one statically-scheduled unit — no FIFOs, no
   LSQ, loads execute in order. *)
let sta ?(w = default_weights) (original : Func.t) : breakdown =
  let a = w.base + w.unit_base + func_area w original in
  { agu = 0; cu = 0; du = 0; total = a }

(* DAE / SPEC / ORACLE: AGU + CU + DU with one LSQ per stored array and one
   FIFO per channel endpoint pair. *)
let decoupled ?(w = default_weights) ?(cfg = Config.default)
    ?(ignore_poison = false) (p : Dae_core.Pipeline.t) : breakdown =
  let agu = w.unit_base + func_area w ~ignore_poison p.Dae_core.Pipeline.agu in
  let cu = w.unit_base + func_area w ~ignore_poison p.Dae_core.Pipeline.cu in
  let stored_arrays =
    List.sort_uniq compare
      (List.filter_map
         (fun (c : Dae_core.Decouple.channel_use) ->
           if c.Dae_core.Decouple.is_store then
             Some c.Dae_core.Decouple.arr
           else None)
         p.Dae_core.Pipeline.channels)
  in
  let n_channels =
    (* request stream per array + store-value stream per stored array +
       one load-value fifo per (load, subscriber) *)
    List.length
      (List.sort_uniq compare
         (List.map
            (fun (c : Dae_core.Decouple.channel_use) -> c.Dae_core.Decouple.arr)
            p.Dae_core.Pipeline.channels))
    + List.length stored_arrays
    + List.fold_left
        (fun acc (_, subs) -> acc + List.length subs)
        0 p.Dae_core.Pipeline.load_subscribers
  in
  let du =
    (n_channels * w.per_fifo)
    + List.length stored_arrays
      * (w.lsq_base
        + (w.lsq_per_entry
          * (cfg.Config.load_queue_size + cfg.Config.store_queue_size)))
  in
  { agu; cu; du; total = w.base + agu + cu + du }
