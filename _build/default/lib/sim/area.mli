(** Analytical ALM area model — the substitution for the paper's Quartus
    place-and-route numbers (DESIGN.md): datapath operators, scheduler
    complexity (blocks, φ muxes), FIFO channels and the LSQ, with weights
    calibrated so Table 1's relationships hold (STA < DAE ≈ SPEC ≈ ORACLE;
    a few percent of CU growth per poison block), not the absolute Arria 10
    counts. *)

open Dae_ir

type weights = {
  base : int;  (** host interface + memory system, shared *)
  unit_base : int;  (** per-unit controller *)
  per_alu : int;
  per_mem_op : int;
  per_channel_op : int;
  per_poison : int;  (** a poison is a 1-bit tagged push *)
  per_block : int;
  per_poison_block : int;
  per_phi : int;
  per_fifo : int;
  lsq_base : int;
  lsq_per_entry : int;
}

val default_weights : weights

type breakdown = { agu : int; cu : int; du : int; total : int }

val instr_cost : weights -> ?ignore_poison:bool -> Instr.t -> int
val func_area : weights -> ?ignore_poison:bool -> Func.t -> int

(** The statically-scheduled single-unit accelerator. *)
val sta : ?w:weights -> Func.t -> breakdown

(** AGU + CU + DU (FIFOs and one LSQ per stored array). [ignore_poison]
    computes the ORACLE variant without the poison machinery. *)
val decoupled :
  ?w:weights -> ?cfg:Config.t -> ?ignore_poison:bool -> Dae_core.Pipeline.t ->
  breakdown
