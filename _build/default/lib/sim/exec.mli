(** Functional co-simulation of the decoupled machine.

    The AGU and CU slices run as round-robin small-step interpreters over
    unbounded FIFOs; the DU serves each array's request stream in order,
    filling store allocations with (value, poison) tags from the CU and
    committing or dropping them in allocation order. Consumes are issued
    lazily (a value pops when available; only a computational use blocks),
    matching the dataflow CU.

    The paper's §6 guarantees are checked dynamically on every run:
    {!Stream_mismatch} if the store-value/kill stream ever disagrees with
    the request stream (Lemma 6.1), {!Deadlock} on global non-progress,
    and {!check_against_golden} compares final memory and per-array commit
    order with the sequential interpreter. *)

open Dae_ir

exception Deadlock of string
exception Stream_mismatch of string
exception Desync of string

type commit = { c_arr : string; c_addr : int; c_value : int }

type result = {
  memory : Interp.Memory.t;
  agu_trace : Trace.unit_trace;
  cu_trace : Trace.unit_trace;
  commits : commit list;  (** program order per array *)
  killed_stores : int;
  committed_stores : int;
  loads_served : int;
  agu_steps : int;
  cu_steps : int;
}

(** [mem] is mutated to the final state.
    @raise Deadlock | Stream_mismatch | Desync as described above. *)
val run :
  ?fuel:int ->
  Dae_core.Pipeline.t ->
  args:(string * Types.value) list ->
  mem:Interp.Memory.t ->
  result

(** Fraction of store requests whose value was a kill. *)
val misspeculation_rate : result -> float

val check_against_golden :
  golden_mem:Interp.Memory.t ->
  golden:Interp.result ->
  result ->
  (unit, string) Stdlib.result
