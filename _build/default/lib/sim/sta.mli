(** Statically-scheduled accelerator baseline (paper §8.1.1 "STA"):
    modulo-scheduled loop with a fixed initiation interval. Any same-array
    load→store chain the static scheduler cannot disambiguate — through
    data {e or} control (a predicated store waits for its guard) — forms a
    loop-carried dependence cycle bounding the II from below; port pressure
    on the dual-ported SRAM bounds it too. *)

open Dae_ir

type analysis = {
  ii : int;
  ii_dependence : int;
  ii_resource : int;
  pipeline_depth : int;
  hot_header : int option;
}

(** Longest def-use distance (instructions) from value [src] to any operand
    of [dst_instr]. *)
val chain_length : Defuse.t -> src:int -> Instr.t -> int option

val analyze : ?cfg:Config.t -> Func.t -> analysis

type result = { cycles : int; ii : int; iterations : int }

(** Cycle count of one invocation from the golden run's dynamic iteration
    count. *)
val cycles_of_run : ?cfg:Config.t -> Func.t -> Interp.result -> result
