(* Cycle-level timing simulation of the DAE architecture template
   (paper Figure 1): pipelined AGU and CU loop engines, latency-carrying
   bounded FIFOs, a per-array load-store queue in the DU, and dual-ported
   SRAM.

   The engine replays the channel traces produced by the functional
   co-simulation (Exec). Unit model: events may retire out of order across
   channels but in order per channel, no earlier than
   [iteration × unit_ii + depth] (pipeline shape), and never past an
   unresolved [Gate] — a branch whose condition consumed a value. Gates are
   what serialize the non-speculative DAE AGU (Figure 2(b)); the
   speculation transformation removes them from the AGU and the engine
   then streams requests at II=1.

   DU model per array: requests pop in order (1/cycle) into the LSQ when a
   queue slot is free; store values resolve allocations in order; loads
   issue out of order once every older store is address-disambiguated —
   waiting only on same-address stores (forwarding when the value is
   ready); stores commit in order through the store port; poisoned stores
   are dropped without a port. A mis-speculated store thus occupies its
   store-queue slot from allocation to kill, which is exactly the paper's
   §8.2.1 cost mechanism. *)

type lsq_stats = {
  mutable alloc_stall_cycles : int; (* request pop blocked on full queue *)
  mutable raw_wait_cycles : int; (* load blocked on unresolved same-addr store *)
  mutable forwards : int;
  mutable kills : int;
  mutable commits : int;
  mutable loads : int;
}

type result = {
  cycles : int;
  agu_finish : int;
  cu_finish : int;
  lsq : (string * lsq_stats) list;
  agu_retire : int array; (* per-event retire cycles, for timeline views *)
  cu_retire : int array;
}

exception Timing_error of string

(* --- FIFO with arrival latency and bounded capacity ---------------------- *)

module Fifo = struct
  type 'a t = {
    q : (int * 'a) Queue.t; (* (available-at cycle, payload) *)
    capacity : int;
    latency : int;
    mutable in_flight : int; (* pushed, not yet popped *)
  }

  let create ~capacity ~latency =
    { q = Queue.create (); capacity; latency; in_flight = 0 }

  let has_space t = t.in_flight < t.capacity

  let push t ~now payload =
    if not (has_space t) then raise (Timing_error "push into full FIFO");
    Queue.add (now + t.latency, payload) t.q;
    t.in_flight <- t.in_flight + 1

  let peek t ~now =
    match Queue.peek_opt t.q with
    | Some (avail, payload) when avail <= now -> Some payload
    | Some _ | None -> None

  let pop t =
    let _, payload = Queue.pop t.q in
    t.in_flight <- t.in_flight - 1;
    payload

  let is_empty t = Queue.is_empty t.q
end

(* --- LSQ / DU per array --------------------------------------------------- *)

type store_state = Awaiting | Ready | Poisoned

type store_entry = {
  st_seq : int;
  st_addr : int;
  mutable st_state : store_state;
}

type load_entry = {
  ld_seq : int;
  ld_addr : int;
  ld_mem : int;
  ld_older_sts : int; (* stores preceding this load in program order *)
  mutable issued : bool;
  mutable complete_at : int; (* valid when issued *)
}

type ld_request = { rq_mem : int; rq_addr : int; rq_seq : int; rq_older : int }
type st_request = { sq_addr : int; sq_seq : int }

(* Load and store requests travel on separate channels (the paper's LSQ has
   distinct load/store queues with 4/32 entries); program order is carried
   by per-array sequence tags assigned from the AGU trace order. *)
type du_array = {
  arr : string;
  req_ld : ld_request Fifo.t;
  req_st : st_request Fifo.t;
  stv : bool Fifo.t; (* payload: poisoned? *)
  mutable stores : store_entry list; (* oldest first *)
  mutable loads : load_entry list; (* oldest first *)
  mutable st_allocated : int; (* total stores accepted so far *)
  stats : lsq_stats;
}

(* --- unit replay ---------------------------------------------------------- *)

type chan_key =
  | Kreq_ld of string
  | Kreq_st of string
  | Kstv of string
  | Kldv of int (* load value channel, per mem id; per unit by construction *)

let chan_of_ev (ev : Trace.ev) : chan_key option =
  match ev with
  | Trace.Send_ld { arr; _ } -> Some (Kreq_ld arr)
  | Trace.Send_st { arr; _ } -> Some (Kreq_st arr)
  | Trace.Produce { arr; _ } | Trace.Kill { arr; _ } -> Some (Kstv arr)
  | Trace.Consume { mem; _ } -> Some (Kldv mem)
  | Trace.Gate _ -> None

type urep = {
  tr : Trace.unit_trace;
  retire : int array; (* retire cycle per event; -1 = not retired *)
  prev_chan : int array; (* index of previous event on same channel; -1 *)
  seq : int array; (* per-array program-order tag for Send_* events *)
  older_sts : int array; (* for Send_ld: stores sent earlier on this array *)
  mutable n_retired : int;
  mutable scan_from : int; (* first unretired index *)
  unit_ii : int;
}

let make_urep (tr : Trace.unit_trace) ~unit_ii =
  let n = Array.length tr.Trace.entries in
  let prev_chan = Array.make n (-1) in
  let seq = Array.make n 0 in
  let older_sts = Array.make n 0 in
  let last : (chan_key, int) Hashtbl.t = Hashtbl.create 8 in
  let seq_counter : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let st_counter : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl arr =
    let v = try Hashtbl.find tbl arr with Not_found -> 0 in
    Hashtbl.replace tbl arr (v + 1);
    v
  in
  let get tbl arr = try Hashtbl.find tbl arr with Not_found -> 0 in
  Array.iteri
    (fun k (e : Trace.entry) ->
      (match e.Trace.ev with
      | Trace.Send_ld { arr; _ } ->
        seq.(k) <- bump seq_counter arr;
        older_sts.(k) <- get st_counter arr
      | Trace.Send_st { arr; _ } ->
        seq.(k) <- bump seq_counter arr;
        ignore (bump st_counter arr)
      | _ -> ());
      match chan_of_ev e.Trace.ev with
      | None -> ()
      | Some c ->
        (match Hashtbl.find_opt last c with
        | Some j -> prev_chan.(k) <- j
        | None -> ());
        Hashtbl.replace last c k)
    tr.Trace.entries;
  {
    tr;
    retire = Array.make n (-1);
    prev_chan;
    seq;
    older_sts;
    n_retired = 0;
    scan_from = 0;
    unit_ii;
  }

let window = 24

(* --- engine --------------------------------------------------------------- *)

type env = {
  cfg : Config.t;
  arrays : (string, du_array) Hashtbl.t;
  ldv : (int * Trace.unit_id, unit Fifo.t) Hashtbl.t;
  subscribers : (int, Trace.unit_id list) Hashtbl.t;
}

let du_array env arr =
  match Hashtbl.find_opt env.arrays arr with
  | Some a -> a
  | None ->
    let a =
      {
        arr;
        req_ld =
          Fifo.create ~capacity:env.cfg.Config.request_fifo_capacity
            ~latency:env.cfg.Config.fifo_latency;
        req_st =
          Fifo.create ~capacity:env.cfg.Config.request_fifo_capacity
            ~latency:env.cfg.Config.fifo_latency;
        stv =
          Fifo.create ~capacity:env.cfg.Config.store_value_fifo_capacity
            ~latency:env.cfg.Config.fifo_latency;
        stores = [];
        loads = [];
        st_allocated = 0;
        stats =
          {
            alloc_stall_cycles = 0;
            raw_wait_cycles = 0;
            forwards = 0;
            kills = 0;
            commits = 0;
            loads = 0;
          };
      }
    in
    Hashtbl.replace env.arrays arr a;
    a

let ldv_fifo env key =
  match Hashtbl.find_opt env.ldv key with
  | Some f -> f
  | None ->
    let f =
      Fifo.create ~capacity:env.cfg.Config.value_fifo_capacity
        ~latency:env.cfg.Config.fifo_latency
    in
    Hashtbl.replace env.ldv key f;
    f

(* Attempt to retire events of [u] at cycle [t]. Returns true on progress. *)
let step_unit env (u : urep) ~t : bool =
  let entries = u.tr.Trace.entries in
  let n = Array.length entries in
  let progress = ref false in
  (* earliest unresolved gate index before which everything must retire *)
  let idx = ref u.scan_from in
  let stop = min n (u.scan_from + window) in
  let blocked_by_gate = ref false in
  while !idx < stop && not !blocked_by_gate do
    let k = !idx in
    if u.retire.(k) < 0 then begin
      let e = entries.(k) in
      let sched_ok = (e.Trace.iter * u.unit_ii) + e.Trace.depth <= t in
      (* in-order per channel: the previous event on this channel must have
         retired, and at most [vector_width] ops share a cycle on one
         channel (§10's vectorized requests; width 1 = the paper's scalar
         port) *)
      let chan_ok =
        let w = env.cfg.Config.vector_width in
        let p = u.prev_chan.(k) in
        p < 0
        || (u.retire.(p) >= 0
           &&
           if u.retire.(p) < t then true
           else begin
             (* count how many chain predecessors already retired at t *)
             let rec same_cycle p n =
               if p < 0 || u.retire.(p) < t then n
               else same_cycle u.prev_chan.(p) (n + 1)
             in
             same_cycle p 0 < w
           end)
      in
      let retire_now () =
        u.retire.(k) <- t;
        u.n_retired <- u.n_retired + 1;
        progress := true
      in
      if sched_ok && chan_ok then begin
        match e.Trace.ev with
        | Trace.Gate { dep } ->
          let resolved =
            if dep < 0 then true
            else
              u.retire.(dep) >= 0
              && u.retire.(dep) + env.cfg.Config.branch_latency <= t
          in
          if resolved then retire_now () else blocked_by_gate := true
        | Trace.Send_ld { arr; mem; addr } ->
          let a = du_array env arr in
          if Fifo.has_space a.req_ld then begin
            Fifo.push a.req_ld ~now:t
              { rq_mem = mem; rq_addr = addr; rq_seq = u.seq.(k);
                rq_older = u.older_sts.(k) };
            retire_now ()
          end
        | Trace.Send_st { arr; addr; _ } ->
          let a = du_array env arr in
          if Fifo.has_space a.req_st then begin
            Fifo.push a.req_st ~now:t { sq_addr = addr; sq_seq = u.seq.(k) };
            retire_now ()
          end
        | Trace.Produce { arr; _ } ->
          let a = du_array env arr in
          if Fifo.has_space a.stv then begin
            Fifo.push a.stv ~now:t false;
            retire_now ()
          end
        | Trace.Kill { arr; _ } ->
          let a = du_array env arr in
          if Fifo.has_space a.stv then begin
            Fifo.push a.stv ~now:t true;
            retire_now ()
          end
        | Trace.Consume { mem; _ } ->
          let f = ldv_fifo env (mem, u.tr.Trace.unit) in
          (match Fifo.peek f ~now:t with
          | Some () ->
            ignore (Fifo.pop f);
            retire_now ()
          | None -> ())
      end
      else if not sched_ok then ()
      else ();
      (* a gate that has not retired blocks everything after it *)
      (match e.Trace.ev with
      | Trace.Gate _ when u.retire.(k) < 0 -> blocked_by_gate := true
      | _ -> ())
    end;
    incr idx
  done;
  while u.scan_from < n && u.retire.(u.scan_from) >= 0 do
    u.scan_from <- u.scan_from + 1
  done;
  !progress

(* One DU cycle for one array. *)
let step_du env (a : du_array) ~t : bool =
  let cfg = env.cfg in
  let w = cfg.Config.vector_width in
  let progress = ref false in
  (* 1. apply store values (up to the vector width) to the oldest awaiting
     allocations *)
  (try
     for _ = 1 to w do
       match Fifo.peek a.stv ~now:t with
       | Some poisoned -> (
         match List.find_opt (fun s -> s.st_state = Awaiting) a.stores with
         | Some s ->
           ignore (Fifo.pop a.stv);
           s.st_state <- (if poisoned then Poisoned else Ready);
           progress := true
         | None -> raise Exit)
       | None -> raise Exit
     done
   with Exit -> ());
  (* 2. drop poisoned heads (up to the vector width — a store mask kills a
     whole vector, §10) and commit at most one ready head through the
     scalar store port *)
  (try
     for _ = 1 to w do
       match a.stores with
       | s :: rest when s.st_state = Poisoned ->
         a.stores <- rest;
         a.stats.kills <- a.stats.kills + 1;
         progress := true
       | _ -> raise Exit
     done
   with Exit -> ());
  (match a.stores with
  | s :: rest when s.st_state = Ready ->
    (* store port: one commit per cycle *)
    a.stores <- rest;
    a.stats.commits <- a.stats.commits + 1;
    progress := true
  | _ -> ());
  (* 3. issue one ready load (out of order within the LQ). RAW check: every
     older store must have been *allocated* (address known) before the load
     can be disambiguated at all; then only same-address stores hold it. *)
  let can_issue (l : load_entry) =
    if l.issued then `Blocked
    else if a.st_allocated < l.ld_older_sts then `Blocked
    else begin
      let older_conflicts =
        List.filter
          (fun s -> s.st_seq < l.ld_seq && s.st_addr = l.ld_addr
                    && s.st_state <> Poisoned)
          a.stores
      in
      match older_conflicts with
      | [] -> `Memory
      | cs ->
        if List.for_all (fun s -> s.st_state = Ready) cs then `Forward
        else `Blocked
    end
  in
  (match
     List.find_opt
       (fun l -> (not l.issued) && can_issue l <> `Blocked)
       a.loads
   with
  | Some l ->
    (* all subscriber FIFOs must have space (reserved at issue) *)
    let subs =
      match Hashtbl.find_opt env.subscribers l.ld_mem with
      | Some s -> s
      | None -> []
    in
    let fifos = List.map (fun unit -> ldv_fifo env (l.ld_mem, unit)) subs in
    if List.for_all Fifo.has_space fifos then begin
      let latency =
        match can_issue l with
        | `Forward ->
          a.stats.forwards <- a.stats.forwards + 1;
          cfg.Config.forward_latency
        | `Memory | `Blocked -> cfg.Config.memory_load_latency
      in
      l.issued <- true;
      l.complete_at <- t + latency;
      a.stats.loads <- a.stats.loads + 1;
      List.iter (fun f -> Fifo.push f ~now:(t + latency) ()) fifos;
      progress := true
    end
  | None ->
    if List.exists (fun l -> not l.issued) a.loads then
      a.stats.raw_wait_cycles <- a.stats.raw_wait_cycles + 1);
  (* 4. retire completed loads from the LQ *)
  let before = List.length a.loads in
  a.loads <- List.filter (fun l -> not (l.issued && l.complete_at <= t)) a.loads;
  if List.length a.loads < before then progress := true;
  (* 5. accept up to [vector_width] store and load requests into the LSQ *)
  (try
     for _ = 1 to w do
       match Fifo.peek a.req_st ~now:t with
       | Some { sq_addr; sq_seq } ->
         if List.length a.stores < cfg.Config.store_queue_size then begin
           ignore (Fifo.pop a.req_st);
           a.stores <-
             a.stores
             @ [ { st_seq = sq_seq; st_addr = sq_addr; st_state = Awaiting } ];
           a.st_allocated <- a.st_allocated + 1;
           progress := true
         end
         else begin
           a.stats.alloc_stall_cycles <- a.stats.alloc_stall_cycles + 1;
           raise Exit
         end
       | None -> raise Exit
     done
   with Exit -> ());
  (try
     for _ = 1 to w do
       match Fifo.peek a.req_ld ~now:t with
       | Some { rq_mem; rq_addr; rq_seq; rq_older } ->
         if List.length a.loads < cfg.Config.load_queue_size then begin
           ignore (Fifo.pop a.req_ld);
           a.loads <-
             a.loads
             @ [ { ld_seq = rq_seq; ld_addr = rq_addr; ld_mem = rq_mem;
                   ld_older_sts = rq_older; issued = false; complete_at = 0 } ];
           progress := true
         end
         else begin
           a.stats.alloc_stall_cycles <- a.stats.alloc_stall_cycles + 1;
           raise Exit
         end
       | None -> raise Exit
     done
   with Exit -> ());
  !progress

let du_idle (a : du_array) =
  Fifo.is_empty a.req_ld && Fifo.is_empty a.req_st && Fifo.is_empty a.stv
  && a.stores = [] && a.loads = []

(* --- top level ------------------------------------------------------------ *)

let run ?(cfg = Config.default) ?(max_cycles = 50_000_000)
    ~(subscribers : (int * Trace.unit_id list) list)
    (agu_tr : Trace.unit_trace) (cu_tr : Trace.unit_trace) : result =
  let env =
    {
      cfg;
      arrays = Hashtbl.create 8;
      ldv = Hashtbl.create 16;
      subscribers = Hashtbl.create 16;
    }
  in
  List.iter (fun (m, subs) -> Hashtbl.replace env.subscribers m subs) subscribers;
  let agu = make_urep agu_tr ~unit_ii:cfg.Config.unit_ii in
  let cu = make_urep cu_tr ~unit_ii:cfg.Config.unit_ii in
  let n_agu = Array.length agu_tr.Trace.entries in
  let n_cu = Array.length cu_tr.Trace.entries in
  let t = ref 0 in
  let agu_finish = ref 0 and cu_finish = ref 0 in
  let idle_rounds = ref 0 in
  let done_ () =
    agu.n_retired = n_agu && cu.n_retired = n_cu
    && Hashtbl.fold (fun _ a acc -> acc && du_idle a) env.arrays true
    && Hashtbl.fold (fun _ f acc -> acc && Fifo.is_empty f) env.ldv true
  in
  while not (done_ ()) do
    if !t > max_cycles then
      raise
        (Timing_error
           (Fmt.str "exceeded %d cycles (AGU %d/%d, CU %d/%d retired)"
              max_cycles agu.n_retired n_agu cu.n_retired n_cu));
    let p1 = step_unit env agu ~t:!t in
    let p2 = step_unit env cu ~t:!t in
    let p3 =
      Hashtbl.fold (fun _ a acc -> step_du env a ~t:!t || acc) env.arrays false
    in
    if agu.n_retired = n_agu && !agu_finish = 0 then agu_finish := !t;
    if cu.n_retired = n_cu && !cu_finish = 0 then cu_finish := !t;
    if p1 || p2 || p3 then begin
      idle_rounds := 0;
      incr t
    end
    else begin
      (* Nothing moved this cycle: fast-forward to the next time-driven
         constraint (FIFO arrival, load completion, scheduled issue, gate
         resolution). If no future time can unblock anything, the
         architecture model has deadlocked. *)
      let next = ref max_int in
      let cand x = if x > !t && x < !next then next := x in
      let unit_cands (u : urep) =
        let n = Array.length u.tr.Trace.entries in
        let stop = min n (u.scan_from + window) in
        for k = u.scan_from to stop - 1 do
          if u.retire.(k) < 0 then begin
            let e = u.tr.Trace.entries.(k) in
            cand ((e.Trace.iter * u.unit_ii) + e.Trace.depth);
            let p = u.prev_chan.(k) in
            if p >= 0 && u.retire.(p) >= 0 then cand (u.retire.(p) + 1);
            match e.Trace.ev with
            | Trace.Gate { dep } when dep >= 0 && u.retire.(dep) >= 0 ->
              cand (u.retire.(dep) + cfg.Config.branch_latency)
            | _ -> ()
          end
        done
      in
      unit_cands agu;
      unit_cands cu;
      Hashtbl.iter
        (fun _ (a : du_array) ->
          (match Queue.peek_opt a.req_ld.Fifo.q with
          | Some (avail, _) -> cand avail
          | None -> ());
          (match Queue.peek_opt a.req_st.Fifo.q with
          | Some (avail, _) -> cand avail
          | None -> ());
          (match Queue.peek_opt a.stv.Fifo.q with
          | Some (avail, _) -> cand avail
          | None -> ());
          List.iter (fun l -> if l.issued then cand l.complete_at) a.loads)
        env.arrays;
      Hashtbl.iter
        (fun _ (f : unit Fifo.t) ->
          match Queue.peek_opt f.Fifo.q with
          | Some (avail, _) -> cand avail
          | None -> ())
        env.ldv;
      if !next = max_int then begin
        incr idle_rounds;
        if !idle_rounds > 4 then
          raise
            (Timing_error
               (Fmt.str
                  "timing deadlock at cycle %d (AGU %d/%d, CU %d/%d retired)"
                  !t agu.n_retired n_agu cu.n_retired n_cu));
        incr t
      end
      else begin
        idle_rounds := 0;
        t := !next
      end
    end
  done;
  {
    cycles = !t;
    agu_finish = !agu_finish;
    cu_finish = !cu_finish;
    lsq =
      Hashtbl.fold (fun arr a acc -> (arr, a.stats) :: acc) env.arrays []
      |> List.sort compare;
    agu_retire = agu.retire;
    cu_retire = cu.retire;
  }

(* --- ORACLE trace filtering ----------------------------------------------- *)

(* The ORACLE bound (paper §8.1.1) runs the same architecture with perfect
   speculation: mis-speculated store requests never enter the AGU stream
   and the CU never issues kills. Which store requests die is decided by
   matching, per array, the k-th store request against the k-th store value
   tag — exactly the pairing Lemma 6.1 guarantees. *)
let oracle_filter (agu_tr : Trace.unit_trace) (cu_tr : Trace.unit_trace) :
    Trace.unit_trace * Trace.unit_trace =
  (* per array, the kill flags in CU store-value order *)
  let kill_flags : (string, bool list ref) Hashtbl.t = Hashtbl.create 8 in
  let flags arr =
    match Hashtbl.find_opt kill_flags arr with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace kill_flags arr r;
      r
  in
  Array.iter
    (fun (e : Trace.entry) ->
      match e.Trace.ev with
      | Trace.Produce { arr; _ } -> (flags arr) := false :: !(flags arr)
      | Trace.Kill { arr; _ } -> (flags arr) := true :: !(flags arr)
      | _ -> ())
    cu_tr.Trace.entries;
  Hashtbl.iter (fun _ r -> r := List.rev !r) kill_flags;
  (* rebuild each trace, dropping killed store sends and kill events, and
     remapping gate dependency indices *)
  let filter_trace (tr : Trace.unit_trace) =
    let cursor : (string, int) Hashtbl.t = Hashtbl.create 8 in
    let killed arr =
      let k = match Hashtbl.find_opt cursor arr with Some k -> k | None -> 0 in
      Hashtbl.replace cursor arr (k + 1);
      match Hashtbl.find_opt kill_flags arr with
      | Some r -> (try List.nth !r k with _ -> false)
      | None -> false
    in
    let kept = ref [] in
    let index_map = Hashtbl.create 64 in
    let new_idx = ref 0 in
    Array.iteri
      (fun old_i (e : Trace.entry) ->
        let keep =
          match e.Trace.ev with
          | Trace.Send_st { arr; _ } -> not (killed arr)
          | Trace.Kill { arr; _ } -> not (killed arr)
          | Trace.Produce { arr; _ } ->
            (* advances the same per-array cursor as kills: the k-th store
               value tag pairs with the k-th store request *)
            ignore (killed arr);
            true
          | _ -> true
        in
        if keep then begin
          Hashtbl.replace index_map old_i !new_idx;
          kept := e :: !kept;
          incr new_idx
        end)
      tr.Trace.entries;
    let remap old_i =
      if old_i < 0 then -1
      else
        let rec back i =
          if i < 0 then -1
          else
            match Hashtbl.find_opt index_map i with
            | Some ni -> ni
            | None -> back (i - 1)
        in
        back old_i
    in
    let entries =
      Array.of_list
        (List.rev_map
           (fun (e : Trace.entry) ->
             match e.Trace.ev with
             | Trace.Gate { dep } -> { e with Trace.ev = Trace.Gate { dep = remap dep } }
             | _ -> e)
           !kept)
    in
    { tr with Trace.entries }
  in
  (filter_trace agu_tr, filter_trace cu_tr)
