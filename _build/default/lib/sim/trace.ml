(* Channel-event traces.

   The functional co-simulation (Exec) records, per unit, the dynamic
   sequence of channel transactions with their loop-iteration index and
   intra-iteration depth; the timing engine (Timing) replays these against
   bounded FIFOs, the LSQ and memory ports. Keeping values/addresses in the
   trace means the timing engine never re-executes code — it only schedules. *)

type unit_id = Agu | Cu

let unit_name = function Agu -> "AGU" | Cu -> "CU"

type ev =
  | Send_ld of { arr : string; mem : int; addr : int }
  | Send_st of { arr : string; mem : int; addr : int }
  | Consume of { arr : string; mem : int; feeds_control : bool }
  | Produce of { arr : string; mem : int; value : int }
  | Kill of { arr : string; mem : int } (* poison call *)
  | Gate of { dep : int }
      (* a branch that depends on consumed values resolved here; [dep] is
         the trace index of the latest consume feeding it (-1 if none
         executed yet). Until the gate resolves, no later channel op of
         this unit may issue — the FIFO push order downstream of the branch
         is unknown before the branch is decided. This is the serialization
         of the paper's Figure 2(b); after speculation the branch is gone
         from the AGU and the gate disappears with it. *)

type entry = {
  iter : int; (* hot-loop iteration index, 0-based *)
  depth : int; (* dynamic instruction index within the iteration *)
  ev : ev;
}

type unit_trace = {
  unit : unit_id;
  entries : entry array;
  iterations : int;
  control_synchronized : bool;
      (* true when some consumed value feeds a branch of this unit: the
         next iteration cannot issue before that consume resolves
         (paper Figure 2(b)'s serialization) *)
}

let arr_of_ev = function
  | Send_ld { arr; _ }
  | Send_st { arr; _ }
  | Consume { arr; _ }
  | Produce { arr; _ }
  | Kill { arr; _ } ->
    Some arr
  | Gate _ -> None

let mem_of_ev = function
  | Send_ld { mem; _ }
  | Send_st { mem; _ }
  | Consume { mem; _ }
  | Produce { mem; _ }
  | Kill { mem; _ } ->
    Some mem
  | Gate _ -> None

let pp_ev ppf = function
  | Send_ld { arr; mem; addr } -> Fmt.pf ppf "send_ld %s[%d] !%d" arr addr mem
  | Send_st { arr; mem; addr } -> Fmt.pf ppf "send_st %s[%d] !%d" arr addr mem
  | Consume { arr; mem; feeds_control } ->
    Fmt.pf ppf "consume %s !%d%s" arr mem (if feeds_control then " (ctrl)" else "")
  | Produce { arr; mem; value } -> Fmt.pf ppf "produce %s=%d !%d" arr value mem
  | Kill { arr; mem } -> Fmt.pf ppf "kill %s !%d" arr mem
  | Gate { dep } -> Fmt.pf ppf "gate(dep=%d)" dep
