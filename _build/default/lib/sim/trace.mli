(** Channel-event traces: the functional co-simulation ({!Exec}) records
    each unit's dynamic channel transactions; the timing engine ({!Timing})
    replays them against bounded FIFOs, the LSQ and memory ports without
    re-executing any code. *)

type unit_id = Agu | Cu

val unit_name : unit_id -> string

type ev =
  | Send_ld of { arr : string; mem : int; addr : int }
  | Send_st of { arr : string; mem : int; addr : int }
  | Consume of { arr : string; mem : int; feeds_control : bool }
  | Produce of { arr : string; mem : int; value : int }
  | Kill of { arr : string; mem : int }  (** poison call *)
  | Gate of { dep : int }
      (** a branch depending on consumed values resolved here; [dep] is the
          trace index of the latest consume feeding it (-1 if none). Until
          the gate resolves no later channel op may issue — the FIFO push
          order downstream of the branch is unknown before the decision.
          This is the serialization of the paper's Figure 2(b); speculation
          removes the branch from the AGU and the gate with it. *)

type entry = {
  iter : int;  (** hot-loop iteration, 0-based *)
  depth : int;  (** dynamic instruction index within the iteration *)
  ev : ev;
}

type unit_trace = {
  unit : unit_id;
  entries : entry array;
  iterations : int;
  control_synchronized : bool;
      (** some consumed value feeds a branch of this unit *)
}

val arr_of_ev : ev -> string option
val mem_of_ev : ev -> int option
val pp_ev : Format.formatter -> ev -> unit
