lib/sim/exec.mli: Dae_core Dae_ir Interp Stdlib Trace Types
