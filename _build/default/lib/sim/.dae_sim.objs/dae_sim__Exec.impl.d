lib/sim/exec.ml: Array Block Dae_core Dae_ir Defuse Fmt Func Hashtbl Instr Interp List Loops Printer Queue Stdlib Trace Types
