lib/sim/timing.ml: Array Config Fmt Hashtbl List Queue Trace
