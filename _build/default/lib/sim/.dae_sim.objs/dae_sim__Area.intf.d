lib/sim/area.mli: Config Dae_core Dae_ir Func Instr
