lib/sim/machine.ml: Area Config Dae_core Dae_ir Exec Fmt Func Interp List Sta Timing Trace Types
