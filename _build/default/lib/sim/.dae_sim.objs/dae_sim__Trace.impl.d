lib/sim/trace.ml: Fmt
