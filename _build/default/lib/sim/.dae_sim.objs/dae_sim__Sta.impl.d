lib/sim/sta.ml: Block Config Control_dep Dae_ir Defuse Func Hashtbl Instr Interp List Loops Option Types
