lib/sim/timing.mli: Config Trace
