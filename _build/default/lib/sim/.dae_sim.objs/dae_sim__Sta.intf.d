lib/sim/sta.mli: Config Dae_ir Defuse Func Instr Interp
