lib/sim/machine.mli: Area Config Dae_core Dae_ir Func Interp Types
