lib/sim/area.ml: Block Config Dae_core Dae_ir Func Instr List
