(* Functional co-simulation of the decoupled machine.

   The AGU and CU slices run as round-robin small-step interpreters over
   unbounded FIFOs; the DU is modelled functionally per array: it serves
   the request stream in order, fills pending store allocations with
   (value, poison) tags from the CU and commits or drops them in
   allocation order.

   This is where the paper's §6 guarantees are *checked dynamically*:

   - Lemma 6.1: the store-value/kill stream per array must match the store
     request stream mem-id by mem-id ([Stream_mismatch] otherwise);
   - sequential consistency: the final memory (and the per-array commit
     order) must equal the sequential interpreter's;
   - deadlock freedom: a global round with no progress raises [Deadlock].

   As a side effect the run produces the per-unit channel traces the
   timing engine replays. *)

open Dae_ir

exception Deadlock of string
exception Stream_mismatch of string
exception Desync of string

type request =
  | Rld of { mem : int; addr : int }
  | Rst of { mem : int; addr : int }

type store_tag = { tag_mem : int; value : int; poisoned : bool }

type commit = { c_arr : string; c_addr : int; c_value : int }

type channels = {
  requests : (string, request Queue.t) Hashtbl.t;
  store_values : (string, store_tag Queue.t) Hashtbl.t;
  load_values : (int * Trace.unit_id, int Queue.t) Hashtbl.t;
  subscribers : (int, Trace.unit_id list) Hashtbl.t; (* load mem -> units *)
}

let get_queue tbl key =
  match Hashtbl.find_opt tbl key with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace tbl key q;
    q

(* --- per-unit interpreter state ------------------------------------------ *)

type phase = Phis | At of int (* instruction index *) | Term

(* A value slot: either a materialised value or a cell that a lazily-issued
   consume will fill when the DU responds. φ-nodes copy slots (a mux does
   not force its input), so a pending consume value can flow through joins
   without blocking the unit; only a computational *use* forces it. *)
type slot = Ready of Types.value | Cell of Types.value option ref

type ustate = {
  uid : Trace.unit_id;
  func : Func.t;
  env : (int, slot) Hashtbl.t;
  mutable cur : int;
  mutable came_from : int option;
  mutable phase : phase;
  mutable finished : bool;
  mutable iter : int;
  mutable depth : int;
  mutable steps : int;
  mutable trace_rev : Trace.entry list;
  mutable n_events : int;
  (* Lazy consumes: a consume whose channel is still empty registers a
     cell and execution continues — only a *use* of the value blocks.
     This models the dataflow CU, where an unconsumed value never stops
     independent operations (e.g. poisoning an earlier store the DU is
     waiting on — sequential consumption would deadlock there). Cells per
     channel fill in FIFO order. *)
  promise_queues : (int, Types.value option ref Queue.t) Hashtbl.t;
      (* mem -> cells in pop order *)
  hot_header : int option;
  control_consumes : (int, unit) Hashtbl.t; (* consume ids feeding branches *)
  (* block -> consume ids its terminator condition transitively depends on;
     executing such a terminator emits a Gate event *)
  serializing_terms : (int, int list) Hashtbl.t;
  last_consume_idx : (int, int) Hashtbl.t; (* consume id -> last trace index *)
}

(* The innermost loop header with the most channel operations: iteration
   boundaries for trace purposes. *)
let hot_header (f : Func.t) : int option =
  let loops = Loops.compute f in
  let channel_ops_in body =
    List.fold_left
      (fun acc bid ->
        acc
        + List.length
            (List.filter
               (fun (i : Instr.t) ->
                 match i.Instr.kind with
                 | Instr.Send_ld_addr _ | Instr.Send_st_addr _
                 | Instr.Consume_val _ | Instr.Produce_val _ | Instr.Poison _
                   ->
                   true
                 | _ -> false)
               (Func.block f bid).Block.instrs))
      0 body
  in
  let candidates =
    List.map (fun (l : Loops.loop) -> (l, channel_ops_in l.Loops.body)) loops.Loops.loops
  in
  let innermost_first =
    List.sort
      (fun ((a : Loops.loop), na) (b, nb) ->
        match compare nb na with
        | 0 -> compare b.Loops.depth a.Loops.depth
        | c -> c)
      candidates
  in
  match innermost_first with
  | ((l, n) :: _) when n > 0 -> Some l.Loops.header
  | _ -> None

(* Consume instructions whose value (transitively) reaches a terminator:
   these make the unit control-synchronized. *)
let control_consume_ids (f : Func.t) : (int, unit) Hashtbl.t =
  let du = Defuse.compute f in
  let result = Hashtbl.create 8 in
  let feeds_control v =
    let seen = Hashtbl.create 16 in
    let rec go v =
      (not (Hashtbl.mem seen v))
      && begin
        Hashtbl.replace seen v ();
        Defuse.terminator_users du v <> []
        || List.exists go (Defuse.users du v)
      end
    in
    go v
  in
  Func.iter_instrs f (fun (i : Instr.t) ->
      match i.Instr.kind with
      | Instr.Consume_val _ ->
        if feeds_control i.Instr.id then Hashtbl.replace result i.Instr.id ()
      | _ -> ());
  result

(* For each block whose terminator condition transitively depends on
   consumed values: the consume ids it depends on. The unit cannot know its
   downstream FIFO push order before such a branch resolves. *)
let serializing_terminators (f : Func.t) : (int, int list) Hashtbl.t =
  let du = Defuse.compute f in
  let consumes =
    Func.fold_instrs f
      (fun acc (i : Instr.t) ->
        match i.Instr.kind with
        | Instr.Consume_val _ -> i.Instr.id :: acc
        | _ -> acc)
      []
  in
  let result = Hashtbl.create 8 in
  if consumes <> [] then
    List.iter
      (fun bid ->
        let b = Func.block f bid in
        let deps =
          List.concat_map
            (fun op ->
              match op with
              | Types.Cst _ -> []
              | Types.Var v ->
                let slice = Defuse.backward_slice du v in
                List.filter (fun c -> Hashtbl.mem slice c) consumes)
            (Block.terminator_operands b)
        in
        if deps <> [] then
          Hashtbl.replace result bid (List.sort_uniq compare deps))
      f.Func.layout;
  result

let make_ustate uid (f : Func.t) ~(args : (string * Types.value) list) : ustate
    =
  let env = Hashtbl.create 64 in
  List.iter
    (fun (name, vid) ->
      match List.assoc_opt name args with
      | Some v -> Hashtbl.replace env vid (Ready v)
      | None -> Fmt.invalid_arg "Exec: missing argument %s" name)
    f.Func.params;
  {
    uid;
    func = f;
    env;
    cur = f.Func.entry;
    came_from = None;
    phase = Phis;
    finished = false;
    iter = -1 (* becomes 0 on first hot-header entry; stays -1 pre-loop *);
    depth = 0;
    steps = 0;
    trace_rev = [];
    n_events = 0;
    hot_header = hot_header f;
    control_consumes = control_consume_ids f;
    serializing_terms = serializing_terminators f;
    last_consume_idx = Hashtbl.create 8;
    promise_queues = Hashtbl.create 8;
  }

(* --- small-step execution ------------------------------------------------ *)

type step_result = Progress | Blocked | Finished

exception Blocked_on_value

(* The slot an operand denotes, without forcing it. *)
let slot_of (u : ustate) = function
  | Types.Cst c -> Ready (Types.value_of_const c)
  | Types.Var v -> (
    match Hashtbl.find_opt u.env v with
    | Some s -> s
    | None ->
      Fmt.invalid_arg "Exec(%s): read of undefined %%%d in %s"
        (Trace.unit_name u.uid) v u.func.Func.name)

let value_of (u : ustate) op =
  match slot_of u op with
  | Ready v -> v
  | Cell r -> (
    match !r with Some v -> v | None -> raise Blocked_on_value)

(* Fill outstanding consume cells from their channels, FIFO per channel.
   Returns true on progress. *)
let fulfill_promises (ch : channels) (u : ustate) : bool =
  let progress = ref false in
  Hashtbl.iter
    (fun mem q ->
      let data = get_queue ch.load_values (mem, u.uid) in
      while (not (Queue.is_empty q)) && not (Queue.is_empty data) do
        let cell = Queue.pop q in
        let v = Queue.pop data in
        cell := Some (Types.Vint v);
        progress := true
      done)
    u.promise_queues;
  !progress

let int_of u op = Types.int_of_value (value_of u op)
let bool_of u op = Types.bool_of_value (value_of u op)

let record (u : ustate) ev =
  u.trace_rev <-
    { Trace.iter = max u.iter 0; depth = u.depth; ev } :: u.trace_rev;
  u.n_events <- u.n_events + 1

let enter_block (u : ustate) bid =
  (match u.hot_header with
  | Some h when bid = h -> begin
    u.iter <- u.iter + 1;
    u.depth <- 0
  end
  | _ -> ());
  u.came_from <- Some u.cur;
  u.cur <- bid;
  u.phase <- Phis

let step (ch : channels) (u : ustate) : step_result =
  if u.finished then Finished
  else begin
    let b = Func.block u.func u.cur in
    match u.phase with
    | Phis ->
      (match u.came_from with
      | None -> ()
      | Some pred ->
        (* φs copy slots, not values: a pending consume flows through the
           join and only blocks a later computational use *)
        let resolved =
          List.map
            (fun (p : Block.phi) ->
              match List.assoc_opt pred p.Block.incoming with
              | Some op -> (p.Block.pid, slot_of u op)
              | None ->
                Fmt.invalid_arg "Exec(%s): phi %%%d in bb%d lacks entry for bb%d"
                  (Trace.unit_name u.uid) p.Block.pid b.Block.bid pred)
            b.Block.phis
        in
        List.iter (fun (pid, s) -> Hashtbl.replace u.env pid s) resolved);
      u.phase <- At 0;
      u.steps <- u.steps + 1;
      Progress
    | At k when k >= List.length b.Block.instrs ->
      u.phase <- Term;
      Progress
    | At k -> (
      let i = List.nth b.Block.instrs k in
      let advance () =
        u.phase <- At (k + 1);
        u.depth <- u.depth + 1;
        u.steps <- u.steps + 1;
        Progress
      in
      match i.Instr.kind with
      | Instr.Binop (op, a, b') ->
        Hashtbl.replace u.env i.Instr.id
          (Ready (Types.Vint (Instr.eval_binop op (int_of u a) (int_of u b'))));
        advance ()
      | Instr.Cmp (op, a, b') ->
        Hashtbl.replace u.env i.Instr.id
          (Ready (Types.Vbool (Instr.eval_cmp op (int_of u a) (int_of u b'))));
        advance ()
      | Instr.Select (c, a, b') ->
        Hashtbl.replace u.env i.Instr.id
          (if bool_of u c then slot_of u a else slot_of u b');
        advance ()
      | Instr.Not a ->
        Hashtbl.replace u.env i.Instr.id (Ready (Types.Vbool (not (bool_of u a))));
        advance ()
      | Instr.Load _ | Instr.Store _ ->
        Fmt.invalid_arg "Exec(%s): raw memory op survived decoupling: %s"
          (Trace.unit_name u.uid)
          (Printer.instr_to_string i)
      | Instr.Send_ld_addr { arr; idx; mem } ->
        let addr = int_of u idx in
        Queue.add (Rld { mem; addr }) (get_queue ch.requests arr);
        record u (Trace.Send_ld { arr; mem; addr });
        advance ()
      | Instr.Send_st_addr { arr; idx; mem } ->
        let addr = int_of u idx in
        Queue.add (Rst { mem; addr }) (get_queue ch.requests arr);
        record u (Trace.Send_st { arr; mem; addr });
        advance ()
      | Instr.Consume_val { arr; mem } ->
        let q = get_queue ch.load_values (mem, u.uid) in
        let pq =
          match Hashtbl.find_opt u.promise_queues mem with
          | Some pq -> pq
          | None ->
            let pq = Queue.create () in
            Hashtbl.replace u.promise_queues mem pq;
            pq
        in
        (if Queue.is_empty q || not (Queue.is_empty pq) then begin
           (* channel empty (or earlier pops still pending): issue the pop
              lazily and keep going — only a use of the value blocks *)
           let cell = ref None in
           Hashtbl.replace u.env i.Instr.id (Cell cell);
           Queue.add cell pq
         end
         else begin
           let v = Queue.pop q in
           Hashtbl.replace u.env i.Instr.id (Ready (Types.Vint v))
         end);
        record u
          (Trace.Consume
             {
               arr;
               mem;
               feeds_control = Hashtbl.mem u.control_consumes i.Instr.id;
             });
        Hashtbl.replace u.last_consume_idx i.Instr.id (u.n_events - 1);
        advance ()
      | Instr.Produce_val { arr; value; mem } ->
        let v = int_of u value in
        Queue.add
          { tag_mem = mem; value = v; poisoned = false }
          (get_queue ch.store_values arr);
        record u (Trace.Produce { arr; mem; value = v });
        advance ()
      | Instr.Poison { arr; mem } ->
        Queue.add
          { tag_mem = mem; value = 0; poisoned = true }
          (get_queue ch.store_values arr);
        record u (Trace.Kill { arr; mem });
        advance ())
    | Term ->
      (* evaluate the branch first: a blocked condition must not record the
         gate or advance any state *)
      let target =
        match b.Block.term with
        | Block.Br t -> Some t
        | Block.Cond_br (c, t, f) -> Some (if bool_of u c then t else f)
        | Block.Switch (c, ts) ->
          let n = List.length ts in
          let k = int_of u c in
          let k = if k < 0 then 0 else if k >= n then n - 1 else k in
          Some (List.nth ts k)
        | Block.Ret _ -> None
      in
      u.steps <- u.steps + 1;
      (match Hashtbl.find_opt u.serializing_terms u.cur with
      | Some consume_ids ->
        let dep =
          List.fold_left
            (fun acc c ->
              match Hashtbl.find_opt u.last_consume_idx c with
              | Some idx -> max acc idx
              | None -> acc)
            (-1) consume_ids
        in
        record u (Trace.Gate { dep })
      | None -> ());
      (match target with
      | Some t ->
        enter_block u t;
        Progress
      | None ->
        u.finished <- true;
        Finished)
  end

let step ch u : step_result =
  match step ch u with r -> r | exception Blocked_on_value -> Blocked

(* --- functional DU ------------------------------------------------------- *)

type du_state = {
  (* per array: stores allocated (in request order) awaiting value/poison *)
  pending : (string, (int * int) Queue.t) Hashtbl.t; (* (mem, addr) *)
  mutable commits : commit list; (* reverse order *)
  mutable killed : int;
  mutable committed : int;
  mutable loads_served : int;
}

let du_create () =
  {
    pending = Hashtbl.create 8;
    commits = [];
    killed = 0;
    committed = 0;
    loads_served = 0;
  }

(* Drain store values into pending allocations (checking Lemma 6.1), commit
   or drop resolved heads, and serve load requests whose earlier stores are
   all resolved. Returns true if any progress was made. *)
let du_pump (du : du_state) (ch : channels) (mem : Interp.Memory.t) : bool =
  let progress = ref false in
  let arrays =
    Hashtbl.fold (fun arr _ acc -> arr :: acc) ch.requests []
    @ Hashtbl.fold (fun arr _ acc -> arr :: acc) ch.store_values []
    |> List.sort_uniq compare
  in
  List.iter
    (fun arr ->
      let reqs = get_queue ch.requests arr in
      let vals = get_queue ch.store_values arr in
      let pend = get_queue du.pending arr in
      let continue_ = ref true in
      while !continue_ do
        continue_ := false;
        (* resolve the pending head with an arrived value *)
        if (not (Queue.is_empty pend)) && not (Queue.is_empty vals) then begin
          let p_mem, p_addr = Queue.pop pend in
          let tag = Queue.pop vals in
          if tag.tag_mem <> p_mem then
            raise
              (Stream_mismatch
                 (Fmt.str
                    "array %s: store request stream has mem%d at head but \
                     value stream delivered mem%d — AGU/CU order mismatch"
                    arr p_mem tag.tag_mem));
          if tag.poisoned then du.killed <- du.killed + 1
          else begin
            Interp.Memory.set mem arr p_addr tag.value;
            du.commits <-
              { c_arr = arr; c_addr = p_addr; c_value = tag.value }
              :: du.commits;
            du.committed <- du.committed + 1
          end;
          progress := true;
          continue_ := true
        end;
        (* serve the request head *)
        if not (Queue.is_empty reqs) then begin
          match Queue.peek reqs with
          | Rst { mem = m; addr } ->
            ignore (Queue.pop reqs);
            Queue.add (m, addr) pend;
            progress := true;
            continue_ := true
          | Rld { mem = m; addr } ->
            (* strict in-order disambiguation: a load waits until every
               earlier store of this array is resolved *)
            if Queue.is_empty pend then begin
              ignore (Queue.pop reqs);
              (* speculative request: the address may be out of bounds on a
                 mis-speculated path; the read must not trap *)
              let v = Interp.Memory.get_speculative mem arr addr in
              let subs =
                match Hashtbl.find_opt ch.subscribers m with
                | Some s -> s
                | None -> []
              in
              List.iter
                (fun unit -> Queue.add v (get_queue ch.load_values (m, unit)))
                subs;
              du.loads_served <- du.loads_served + 1;
              progress := true;
              continue_ := true
            end
        end
      done)
    arrays;
  !progress

(* --- co-simulation driver ------------------------------------------------ *)

type result = {
  memory : Interp.Memory.t;
  agu_trace : Trace.unit_trace;
  cu_trace : Trace.unit_trace;
  commits : commit list; (* program order per array *)
  killed_stores : int;
  committed_stores : int;
  loads_served : int;
  agu_steps : int;
  cu_steps : int;
}

let finalize_trace (u : ustate) : Trace.unit_trace =
  {
    Trace.unit = u.uid;
    entries = Array.of_list (List.rev u.trace_rev);
    iterations = u.iter + 1;
    control_synchronized = Hashtbl.length u.control_consumes > 0;
  }

let run ?(fuel = 50_000_000) (p : Dae_core.Pipeline.t)
    ~(args : (string * Types.value) list) ~(mem : Interp.Memory.t) : result =
  let ch =
    {
      requests = Hashtbl.create 8;
      store_values = Hashtbl.create 8;
      load_values = Hashtbl.create 16;
      subscribers = Hashtbl.create 16;
    }
  in
  List.iter
    (fun (m, subs) ->
      Hashtbl.replace ch.subscribers m
        (List.map (function `Agu -> Trace.Agu | `Cu -> Trace.Cu) subs))
    p.Dae_core.Pipeline.load_subscribers;
  let agu = make_ustate Trace.Agu p.Dae_core.Pipeline.agu ~args in
  let cu = make_ustate Trace.Cu p.Dae_core.Pipeline.cu ~args in
  let du = du_create () in
  let total_steps = ref 0 in
  let finished () = agu.finished && cu.finished in
  let running = ref true in
  while !running do
    let progress = ref false in
    (* run each unit as far as it can go this round *)
    List.iter
      (fun u ->
        if fulfill_promises ch u then progress := true;
        let go = ref true in
        while !go do
          match step ch u with
          | Progress ->
            progress := true;
            incr total_steps;
            if !total_steps > fuel then raise (Deadlock "out of fuel");
            if fulfill_promises ch u then ()
          | Blocked | Finished -> go := false
        done)
      [ agu; cu ];
    if du_pump du ch mem then progress := true;
    if finished () then begin
      (* final drain: let the DU retire trailing stores and fulfill any
         consumes that were issued lazily and never used *)
      while
        du_pump du ch mem
        || fulfill_promises ch agu
        || fulfill_promises ch cu
      do
        ()
      done;
      running := false
    end
    else if not !progress then
      raise
        (Deadlock
           (Fmt.str "no progress: AGU %s at bb%d, CU %s at bb%d"
              (if agu.finished then "finished" else "blocked")
              agu.cur
              (if cu.finished then "finished" else "blocked")
              cu.cur))
  done;
  (* post-run invariants: every channel must be fully drained *)
  Hashtbl.iter
    (fun arr q ->
      if not (Queue.is_empty q) then
        raise (Desync (Fmt.str "unserved requests remain for array %s" arr)))
    ch.requests;
  Hashtbl.iter
    (fun arr q ->
      if not (Queue.is_empty q) then
        raise (Desync (Fmt.str "unmatched store values remain for array %s" arr)))
    ch.store_values;
  Hashtbl.iter
    (fun arr q ->
      if not (Queue.is_empty q) then
        raise
          (Desync
             (Fmt.str "store allocations never resolved for array %s" arr)))
    du.pending;
  Hashtbl.iter
    (fun (m, unit) q ->
      if not (Queue.is_empty q) then
        raise
          (Desync
             (Fmt.str "load values for mem%d never consumed by %s" m
                (Trace.unit_name unit))))
    ch.load_values;
  {
    memory = mem;
    agu_trace = finalize_trace agu;
    cu_trace = finalize_trace cu;
    commits = List.rev du.commits;
    killed_stores = du.killed;
    committed_stores = du.committed;
    loads_served = du.loads_served;
    agu_steps = agu.steps;
    cu_steps = cu.steps;
  }

(* Mis-speculation rate: fraction of store requests whose value was a kill. *)
let misspeculation_rate (r : result) : float =
  let total = r.killed_stores + r.committed_stores in
  if total = 0 then 0.0 else float_of_int r.killed_stores /. float_of_int total

(* Check a decoupled execution against the sequential golden model: same
   final memory, and the same per-array sequence of committed stores. *)
let check_against_golden ~(golden_mem : Interp.Memory.t)
    ~(golden : Interp.result) (r : result) : (unit, string) Stdlib.result =
  if not (Interp.Memory.equal golden_mem r.memory) then
    Error
      (Fmt.str "final memory differs@.golden:@.%a@.decoupled:@.%a"
         Interp.Memory.pp golden_mem Interp.Memory.pp r.memory)
  else begin
    let arrays =
      List.sort_uniq compare (List.map (fun c -> c.c_arr) r.commits)
    in
    let mismatch =
      List.find_map
        (fun arr ->
          let golden_stores =
            List.filter_map
              (fun (_, a, idx, v) -> if a = arr then Some (idx, v) else None)
              (Interp.stores golden)
          in
          let sim_stores =
            List.filter_map
              (fun c ->
                if c.c_arr = arr then Some (c.c_addr, c.c_value) else None)
              r.commits
          in
          if golden_stores <> sim_stores then
            Some
              (Fmt.str
                 "commit order for %s differs: golden %d stores, sim %d stores"
                 arr
                 (List.length golden_stores)
                 (List.length sim_stores))
          else None)
        arrays
    in
    match mismatch with None -> Ok () | Some m -> Error m
  end
