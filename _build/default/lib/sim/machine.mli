(** Top-level machine: compile a kernel for one of the four evaluated
    architectures and simulate a sequence of invocations (graph kernels run
    once per level/round, threading memory through).

    Every decoupled invocation is checked against the sequential golden
    model (final memory and per-array commit order) and the AGU/CU streams
    are checked against each other — a run that returns has proved its own
    sequential consistency. *)

open Dae_ir

type arch =
  | Sta  (** static HLS baseline *)
  | Dae  (** decoupling without speculation *)
  | Spec  (** the paper's contribution *)
  | Oracle  (** SPEC with mis-speculated requests filtered: an upper bound *)

val arch_name : arch -> string

type invocation = (string * Types.value) list

type result = {
  arch : arch;
  cycles : int;
  invocations : int;
  killed_stores : int;
  committed_stores : int;
  misspec_rate : float;
  area : Area.breakdown;
  memory : Interp.Memory.t;  (** final memory, for workload-level checks *)
  pipeline : Dae_core.Pipeline.t option;  (** [None] for {!Sta} *)
}

exception Check_failed of string

(** @raise Check_failed when a decoupled run disagrees with the golden
    model. *)
val simulate :
  ?cfg:Config.t ->
  ?w:Area.weights ->
  arch ->
  Func.t ->
  invocations:invocation list ->
  mem:Interp.Memory.t ->
  result

val simulate_all :
  ?cfg:Config.t ->
  ?w:Area.weights ->
  Func.t ->
  invocations:invocation list ->
  mem:Interp.Memory.t ->
  (arch * result) list
