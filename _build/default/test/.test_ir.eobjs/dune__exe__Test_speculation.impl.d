test/test_speculation.ml: Alcotest Block Dae_core Dae_ir Dae_sim Dae_workloads Decouple Fixtures Fmt Func Hoist Instr List Lod Merge Parser Pipeline Poison Reach Spec_load Verify
