test/test_analysis.ml: Alcotest Control_dep Dae_core Dae_ir Dae_workloads Defuse Dom Fmt Hashtbl List Lod Loops Parser Reach Verify
