test/test_consistency.ml: Alcotest Array Dae_core Dae_ir Dae_sim Dae_workloads Gen List QCheck QCheck_alcotest Test
