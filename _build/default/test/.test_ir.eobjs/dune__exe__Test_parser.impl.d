test/test_parser.ml: Alcotest Block Dae_core Dae_ir Dae_workloads Func Interp List Parser Printer QCheck QCheck_alcotest Test Types
