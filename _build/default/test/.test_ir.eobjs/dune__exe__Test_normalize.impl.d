test/test_normalize.ml: Alcotest Array Dae_ir Dae_sim Fixtures Fmt Func Interp List Loop_canon Loops Node_split Parser Types Verify
