test/test_foundations.mli:
