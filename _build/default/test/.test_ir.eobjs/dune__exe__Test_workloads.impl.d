test/test_workloads.ml: Alcotest Array Dae_core Dae_sim Dae_workloads Fmt Graph Kernels List Misspec Synthetic
