test/test_backends.ml: Alcotest Cgra_backend Dae_core Dae_ir Dae_workloads Desc_backend Fixtures Fmt Hashtbl List Pipeline QCheck QCheck_alcotest String Test
