test/test_sim.ml: Alcotest Area Array Builder Config Dae_core Dae_ir Dae_sim Dae_workloads Exec Fixtures Interp Machine Sta Timing Trace Types
