test/test_ir.ml: Alcotest Block Builder Dae_ir Dae_workloads Dce Func Instr Interp List Loops Parser QCheck QCheck_alcotest Simplify Test Types Verify
