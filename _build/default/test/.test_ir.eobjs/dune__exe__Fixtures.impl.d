test/fixtures.ml: Array Builder Dae_ir Dae_workloads Instr Interp Parser Types Verify
