(* CFG analyses and the loss-of-decoupling analysis (paper §4), exercised
   on the paper's running examples. *)

open Dae_ir
open Dae_core

let tc = Alcotest.test_case
let check = Alcotest.check
let sorted = List.sort compare

(* The paper's Figure 4(a) CFG. Block correspondence:
     paper 1 = bb2, paper 2 = bb3 (request a, LoD source),
     paper 3 = bb4 (LoD source, 3-way), paper 4 = bb5 (request c),
     paper 5 = bb6 (request b, LoD source), paper 6 = bb7 (request d),
     paper 7 = bb8 (request e), latch = bb9. *)
let fig4_src =
  {|
  func fig4(n: %0) {
  bb0:
    br bb1
  bb1:
    %1 = phi i32 [bb0: 0], [bb9: %2]
    %3 = cmp slt %1, %0
    br %3, bb2, bb10
  bb2:
    %4 = and %1, 1
    %5 = cmp eq %4, 0
    br %5, bb3, bb4
  bb3:
    store A[%1], 7 !mem0
    %6 = load A[%1] !mem1
    %7 = cmp sgt %6, 10
    br %7, bb6, bb9
  bb4:
    %8 = load A[%1] !mem2
    %9 = srem %8, 3
    switch %9, bb5, bb6, bb7
  bb5:
    store A[%1], 8 !mem3
    br bb6
  bb7:
    store A[%1], 9 !mem4
    br bb9
  bb6:
    store A[%1], 10 !mem5
    %10 = load A[%1] !mem6
    %11 = cmp sgt %10, 20
    br %11, bb8, bb9
  bb8:
    store A[%1], 11 !mem7
    br bb9
  bb9:
    %2 = add %1, 1
    br bb1
  bb10:
    ret
  }
  |}

let fig4 () =
  let f = Parser.parse fig4_src in
  Verify.check_exn f;
  f

(* --- dominators ----------------------------------------------------------- *)

let test_dominators_fig4 () =
  let f = fig4 () in
  let dom = Dom.compute f in
  let dominates a b = Dom.dominates dom a b in
  check Alcotest.bool "entry dominates all" true (dominates 0 9);
  check Alcotest.bool "header dominates body" true (dominates 1 6);
  check Alcotest.bool "bb2 dominates bb6 (all paths pass it)" true
    (dominates 2 6);
  check Alcotest.bool "bb3 does not dominate bb6" false (dominates 3 6);
  check Alcotest.bool "bb4 does not dominate bb6" false (dominates 4 6);
  check Alcotest.bool "bb4 dominates bb5" true (dominates 4 5);
  check Alcotest.bool "bb4 dominates bb7" true (dominates 4 7);
  check Alcotest.bool "strict dominance is irreflexive" false
    (Dom.strictly_dominates dom 4 4)

let test_postdominators_fig4 () =
  let f = fig4 () in
  let pdom = Dom.compute_post f in
  (* the latch bb9 postdominates every body block *)
  List.iter
    (fun b ->
      check Alcotest.bool
        (Fmt.str "bb9 postdominates bb%d" b)
        true
        (Dom.dominates pdom 9 b))
    [ 2; 3; 4; 5; 6; 7; 8 ];
  check Alcotest.bool "bb6 does not postdominate bb4" false
    (Dom.dominates pdom 6 4);
  check Alcotest.bool "bb6 postdominates bb5" true (Dom.dominates pdom 6 5)

(* --- control dependence ---------------------------------------------------- *)

let test_control_dep_fig4 () =
  let f = fig4 () in
  let cd = Control_dep.compute f in
  check (Alcotest.list Alcotest.int) "bb5 directly depends on bb4" [ 4 ]
    (sorted (Control_dep.sources cd 5));
  check (Alcotest.list Alcotest.int) "bb7 directly depends on bb4" [ 4 ]
    (sorted (Control_dep.sources cd 7));
  check (Alcotest.list Alcotest.int) "bb6 depends on bb3 and bb4" [ 2; 3; 4 ]
    (sorted (Control_dep.transitive_sources cd 6)
    |> List.filter (fun b -> b <> 1));
  check Alcotest.bool "bb8 transitively depends on bb6" true
    (Control_dep.depends cd ~block:8 ~on:6);
  check Alcotest.bool "bb8 transitively depends on bb2" true
    (Control_dep.depends cd ~block:8 ~on:2);
  check Alcotest.bool "bb3 does not depend on bb4" false
    (Control_dep.depends cd ~block:3 ~on:4)

(* --- loops ------------------------------------------------------------------ *)

let test_loops_fig4 () =
  let f = fig4 () in
  let loops = Loops.compute f in
  check Alcotest.int "single loop" 1 (List.length loops.Loops.loops);
  let l = List.hd loops.Loops.loops in
  check Alcotest.int "header" 1 l.Loops.header;
  check Alcotest.int "latch" 9 l.Loops.latch;
  check Alcotest.bool "backedge detected" true
    (Loops.is_backedge loops ~src:9 ~dst:1);
  check Alcotest.bool "body contains bb6" true (List.mem 6 l.Loops.body);
  check Alcotest.bool "body excludes exit" false (List.mem 10 l.Loops.body)

let test_nested_loops () =
  let k = Dae_workloads.Kernels.fw ~n:3 () in
  let f = k.Dae_workloads.Kernels.build () in
  let loops = Loops.compute f in
  check Alcotest.int "three nested loops" 3 (List.length loops.Loops.loops);
  let depths =
    sorted (List.map (fun (l : Loops.loop) -> l.Loops.depth) loops.Loops.loops)
  in
  check (Alcotest.list Alcotest.int) "depths 1,2,3" [ 1; 2; 3 ] depths;
  let innermost =
    List.find (fun (l : Loops.loop) -> l.Loops.depth = 3) loops.Loops.loops
  in
  check Alcotest.bool "innermost has a parent" true
    (innermost.Loops.parent <> None)

let test_reachability () =
  let f = fig4 () in
  let r = Reach.create f in
  check Alcotest.bool "bb4 reaches bb8" true (Reach.reachable r ~src:4 ~dst:8);
  check Alcotest.bool "bb3 reaches bb8" true (Reach.reachable r ~src:3 ~dst:8);
  check Alcotest.bool "bb3 does not reach bb5" false
    (Reach.reachable r ~src:3 ~dst:5);
  check Alcotest.bool "bb7 does not reach bb6" false
    (Reach.reachable r ~src:7 ~dst:6);
  check Alcotest.bool "no reach through backedge" false
    (Reach.reachable r ~src:9 ~dst:2);
  check Alcotest.bool "reflexive" true (Reach.reachable r ~src:6 ~dst:6);
  check Alcotest.bool "strict excludes self without cycle" false
    (Reach.strictly_reachable r ~src:6 ~dst:6)

(* --- def-use ---------------------------------------------------------------- *)

let test_backward_slice_traces_phi_terminators () =
  (* Definition 4.1's subtlety: crossing a φ also traces the terminator
     conditions of its incoming blocks. *)
  let f =
    Parser.parse
      {|
      func sl(n: %0) {
      bb0:
        %1 = load A[0] !mem0
        %2 = cmp sgt %1, 5
        br %2, bb1, bb2
      bb1:
        br bb3
      bb2:
        br bb3
      bb3:
        %3 = phi i32 [bb1: 1], [bb2: 2]
        store B[%3], 0 !mem1
        ret
      }
      |}
  in
  let du = Defuse.compute f in
  let slice = Defuse.backward_slice du 3 in
  check Alcotest.bool "slice of φ includes the branch condition producer"
    true (Hashtbl.mem slice 1);
  check Alcotest.bool "depends_on sees the load" true
    (Defuse.depends_on du 3 ~sources:[ 1 ])

(* --- LoD analysis (§4) ------------------------------------------------------ *)

let test_lod_fig4 () =
  let f = fig4 () in
  let lod = Lod.analyze f in
  check (Alcotest.list Alcotest.int) "sources are paper blocks 2,3,5"
    [ 3; 4; 6 ] (sorted lod.Lod.src_blocks);
  check (Alcotest.list Alcotest.int) "chain heads are paper blocks 2,3"
    [ 3; 4 ] (sorted lod.Lod.chain_heads);
  (* request a (mem0, in bb3) must not be speculated *)
  check Alcotest.bool "request a has no control LoD" true
    (not (List.mem_assoc 0 lod.Lod.control_lod));
  (* request d (mem4, bb7) depends on bb4 only *)
  check (Alcotest.list Alcotest.int) "request d sources" [ 4 ]
    (sorted (List.assoc 4 lod.Lod.control_lod));
  (* request b (mem5, bb6) depends on both heads *)
  check (Alcotest.list Alcotest.int) "request b sources" [ 3; 4 ]
    (sorted (List.assoc 5 lod.Lod.control_lod)
    |> List.filter (fun b -> b <> 6));
  check Alcotest.bool "no data LoD in fig4" false (Lod.has_data_lod lod)

let test_lod_data_dependency () =
  (* A[f(A[i])]-style access: address depends on a decoupled load *)
  let f =
    Parser.parse
      {|
      func datalod(n: %0) {
      bb0:
        %1 = load A[0] !mem0
        %2 = add %1, 1
        store A[%2], 9 !mem1
        ret
      }
      |}
  in
  let lod = Lod.analyze f in
  check Alcotest.bool "data LoD detected" true (Lod.has_data_lod lod);
  check (Alcotest.list Alcotest.int) "mem1 blocked" [ 1 ]
    (Lod.data_blocked lod)

let test_lod_no_false_positive () =
  (* store guarded by a load from an array that is never stored: trivially
     prefetchable, no LoD under the default policy *)
  let f =
    Parser.parse
      {|
      func clean(n: %0) {
      bb0:
        %1 = load C[0] !mem0
        %2 = cmp sgt %1, 0
        br %2, bb1, bb2
      bb1:
        store A[0], 1 !mem1
        br bb2
      bb2:
        ret
      }
      |}
  in
  let lod = Lod.analyze f in
  check Alcotest.bool "no control LoD" false (Lod.has_control_lod lod);
  (* the All_loads policy makes it a LoD *)
  let lod2 = Lod.analyze ~policy:Lod.All_loads f in
  check Alcotest.bool "All_loads flags it" true (Lod.has_control_lod lod2);
  (* array-targeted policy *)
  let lod3 = Lod.analyze ~policy:(Lod.Loads_from [ "C" ]) f in
  check Alcotest.bool "Loads_from C flags it" true (Lod.has_control_lod lod3);
  let lod4 = Lod.analyze ~policy:(Lod.Loads_from [ "B" ]) f in
  check Alcotest.bool "Loads_from B does not" false (Lod.has_control_lod lod4)

let test_lod_chain_heads_on_kernels () =
  (* bfs has the nested chain: the inner source is dropped *)
  let k = Dae_workloads.Kernels.bfs ~graph:(Dae_workloads.Graph.small ()) () in
  let f = k.Dae_workloads.Kernels.build () in
  let lod = Lod.analyze f in
  check Alcotest.int "bfs: two sources" 2 (List.length lod.Lod.src_blocks);
  check Alcotest.int "bfs: one chain head" 1 (List.length lod.Lod.chain_heads)

let () =
  Alcotest.run "analysis"
    [
      ( "dom",
        [
          tc "dominators fig4" `Quick test_dominators_fig4;
          tc "postdominators fig4" `Quick test_postdominators_fig4;
        ] );
      ("control-dep", [ tc "fig4" `Quick test_control_dep_fig4 ]);
      ( "loops",
        [
          tc "fig4 loop" `Quick test_loops_fig4;
          tc "nested (fw)" `Quick test_nested_loops;
        ] );
      ("reach", [ tc "fig4 reachability" `Quick test_reachability ]);
      ( "defuse",
        [ tc "φ traces terminators" `Quick
            test_backward_slice_traces_phi_terminators ] );
      ( "lod",
        [
          tc "fig4 sources and heads" `Quick test_lod_fig4;
          tc "data LoD" `Quick test_lod_data_dependency;
          tc "policies" `Quick test_lod_no_false_positive;
          tc "kernel chain heads" `Quick test_lod_chain_heads_on_kernels;
        ] );
    ]
