(* Front-end normalization: node splitting for irreducible control flow
   (§3.2, Peterson et al.) and loop canonicalization (single combined
   latch). *)

open Dae_ir

let tc = Alcotest.test_case
let check = Alcotest.check

(* A two-entry cycle: bb1 <-> bb2, both reachable from bb0 — the canonical
   irreducible shape. The loop mutates x[0], so it terminates and its
   semantics are observable. *)
let irreducible_src =
  {|
  func irr(n: %0) {
  bb0:
    %1 = cmp slt %0, 10
    br %1, bb1, bb2
  bb1:
    %2 = load x[0] !mem0
    %3 = add %2, 1
    store x[0], %3 !mem1
    %4 = cmp slt %3, 5
    br %4, bb2, bb3
  bb2:
    %5 = load x[0] !mem2
    %6 = add %5, 2
    store x[0], %6 !mem3
    %7 = cmp slt %6, 8
    br %7, bb1, bb3
  bb3:
    %8 = load x[0] !mem4
    store y[0], %8 !mem5
    ret
  }
  |}

let test_detects_irreducibility () =
  let f = Parser.parse irreducible_src in
  Verify.check_exn f;
  check Alcotest.bool "irreducible" false (Loops.is_reducible f);
  check Alcotest.bool "witness edge found" true
    (Node_split.find_irreducible_edge f <> None)

let run_mem (f : Func.t) n =
  let mem = Interp.Memory.create [ ("x", [| 0 |]); ("y", [| -1 |]) ] in
  ignore (Interp.run f ~args:[ ("n", Types.Vint n) ] ~mem);
  mem

let test_split_makes_reducible_and_preserves_semantics () =
  List.iter
    (fun n ->
      let original = Parser.parse irreducible_src in
      let golden = run_mem original n in
      let f = Parser.parse irreducible_src in
      let splits = Node_split.run f in
      check Alcotest.bool "at least one split" true (splits >= 1);
      Verify.check_exn f;
      check Alcotest.bool "now reducible" true (Loops.is_reducible f);
      let after = run_mem f n in
      check Alcotest.bool
        (Fmt.str "same memory for n=%d" n)
        true
        (Interp.Memory.equal golden after))
    [ 3; 15 ]

let test_split_noop_on_reducible () =
  let f = Fixtures.fig4 () in
  check Alcotest.int "no splits needed" 0 (Node_split.run f)

let test_full_pipeline_on_irreducible_input () =
  (* Pipeline.compile normalizes automatically; the decoupled execution
     must still match the golden model *)
  let f = Parser.parse irreducible_src in
  List.iter
    (fun arch ->
      let r =
        Dae_sim.Machine.simulate arch f
          ~invocations:[ [ ("n", Types.Vint 3) ] ]
          ~mem:(Interp.Memory.create [ ("x", [| 0 |]); ("y", [| -1 |]) ])
      in
      ignore r)
    [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec ]

(* --- loop canonicalization ------------------------------------------------- *)

(* Two backedges into one header (a `continue`-like shape). *)
let multi_latch_src =
  {|
  func ml(n: %0) {
  bb0:
    br bb1
  bb1:
    %1 = phi i32 [bb0: 0], [bb2: %2], [bb3: %3]
    %4 = cmp slt %1, %0
    br %4, bb2, bb4
  bb2:
    %2 = add %1, 1
    %5 = load x[%1] !mem0
    %6 = cmp sgt %5, 50
    br %6, bb1, bb3
  bb3:
    %3 = add %1, 2
    store x[%1], %3 !mem1
    br bb1
  bb4:
    ret
  }
  |}

let test_loop_canon () =
  let f = Parser.parse multi_latch_src in
  Verify.check_exn f;
  (match Loops.check_canonical (Loops.compute f) with
  | Ok () -> Alcotest.fail "expected a multi-latch loop"
  | Error _ -> ());
  let golden =
    let mem = Interp.Memory.create [ ("x", Array.init 16 (fun i -> i * 9)) ] in
    ignore (Interp.run f ~args:[ ("n", Types.Vint 10) ] ~mem);
    mem
  in
  let added = Loop_canon.run f in
  check Alcotest.int "one combined latch" 1 added;
  Verify.check_exn f;
  (match Loops.check_canonical (Loops.compute f) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "still non-canonical: %s" e);
  let mem = Interp.Memory.create [ ("x", Array.init 16 (fun i -> i * 9)) ] in
  ignore (Interp.run f ~args:[ ("n", Types.Vint 10) ] ~mem);
  check Alcotest.bool "semantics preserved" true (Interp.Memory.equal golden mem)

let test_canon_then_pipeline () =
  let f = Parser.parse multi_latch_src in
  List.iter
    (fun arch ->
      ignore
        (Dae_sim.Machine.simulate arch f
           ~invocations:[ [ ("n", Types.Vint 10) ] ]
           ~mem:(Interp.Memory.create [ ("x", Array.init 16 (fun i -> i * 9)) ])))
    [ Dae_sim.Machine.Dae; Dae_sim.Machine.Spec ]

let () =
  Alcotest.run "normalize"
    [
      ( "node-split",
        [
          tc "detects irreducibility" `Quick test_detects_irreducibility;
          tc "split preserves semantics" `Quick
            test_split_makes_reducible_and_preserves_semantics;
          tc "no-op on reducible" `Quick test_split_noop_on_reducible;
          tc "pipeline handles irreducible input" `Quick
            test_full_pipeline_on_irreducible_input;
        ] );
      ( "loop-canon",
        [
          tc "multi-latch merged" `Quick test_loop_canon;
          tc "pipeline handles multi-latch input" `Quick
            test_canon_then_pipeline;
        ] );
    ]
