(* Evaluation harness: regenerates every table and figure of the paper's
   §8 from the simulator, plus the ablations DESIGN.md calls out and a set
   of Bechamel micro-benchmarks of the compiler passes themselves
   (one Test.make per experiment).

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig6    # one section
     sections: fig6 table1 table2 fig7 ablation micro

   Cycle counts are this repository's simulator, not the paper's ModelSim
   runs; EXPERIMENTS.md records the side-by-side comparison of shapes. *)

open Dae_workloads

let archs =
  [ Dae_sim.Machine.Sta; Dae_sim.Machine.Dae; Dae_sim.Machine.Spec;
    Dae_sim.Machine.Oracle ]

let simulate ?cfg arch (k : Kernels.t) =
  let r =
    Dae_sim.Machine.simulate ?cfg arch
      (k.Kernels.build ())
      ~invocations:(k.Kernels.invocations ())
      ~mem:(k.Kernels.init_mem ())
  in
  (match k.Kernels.check r.Dae_sim.Machine.memory with
  | Ok () -> ()
  | Error msg ->
    Fmt.failwith "%s/%s failed its reference check: %s" k.Kernels.name
      (Dae_sim.Machine.arch_name arch)
      msg);
  r

let harmonic_mean xs =
  let xs = List.filter (fun x -> x > 0.) xs in
  float_of_int (List.length xs) /. List.fold_left (fun a x -> a +. (1. /. x)) 0. xs

(* --- Figure 6: speedup over STA ------------------------------------------- *)

let fig6 () =
  Fmt.pr "@.== Figure 6: performance normalized to STA (higher is better) ==@.";
  Fmt.pr "%-6s %10s %10s %10s@." "kernel" "DAE" "SPEC" "ORACLE";
  let speedups = ref [] in
  List.iter
    (fun (k : Kernels.t) ->
      let cycles arch = float_of_int (simulate arch k).Dae_sim.Machine.cycles in
      let sta = cycles Dae_sim.Machine.Sta in
      let norm arch = sta /. cycles arch in
      let spec = norm Dae_sim.Machine.Spec in
      speedups := spec :: !speedups;
      Fmt.pr "%-6s %9.2fx %9.2fx %9.2fx@." k.Kernels.name
        (norm Dae_sim.Machine.Dae) spec
        (norm Dae_sim.Machine.Oracle))
    (Kernels.paper_suite ());
  Fmt.pr "SPEC harmonic-mean speedup over STA: %.2fx (paper: 1.9x avg, up to 3x)@."
    (harmonic_mean !speedups)

(* --- Table 1: absolute cycles and area -------------------------------------- *)

let table1 () =
  Fmt.pr "@.== Table 1: absolute performance and area ==@.";
  Fmt.pr "%-6s %6s %6s %8s | %10s %10s %10s %10s | %7s %7s %7s %7s@."
    "kernel" "pblk" "pcall" "misspec" "STA" "DAE" "SPEC" "ORACLE" "aSTA"
    "aDAE" "aSPEC" "aORA";
  let ratios = ref ([], [], [], [], [], []) in
  List.iter
    (fun (k : Kernels.t) ->
      let results = List.map (fun a -> (a, simulate a k)) archs in
      let get a = List.assoc a results in
      let cycles a = (get a).Dae_sim.Machine.cycles in
      let area a = (get a).Dae_sim.Machine.area.Dae_sim.Area.total in
      let spec = get Dae_sim.Machine.Spec in
      let pblk, pcall =
        match spec.Dae_sim.Machine.pipeline with
        | Some p ->
          ( Dae_core.Pipeline.poison_block_count p,
            Dae_core.Pipeline.poison_call_count p )
        | None -> (0, 0)
      in
      Fmt.pr "%-6s %6d %6d %7.0f%% | %10d %10d %10d %10d | %7d %7d %7d %7d@."
        k.Kernels.name pblk pcall
        (100. *. spec.Dae_sim.Machine.misspec_rate)
        (cycles Dae_sim.Machine.Sta) (cycles Dae_sim.Machine.Dae)
        (cycles Dae_sim.Machine.Spec) (cycles Dae_sim.Machine.Oracle)
        (area Dae_sim.Machine.Sta) (area Dae_sim.Machine.Dae)
        (area Dae_sim.Machine.Spec) (area Dae_sim.Machine.Oracle);
      let f = float_of_int in
      let c0 = f (cycles Dae_sim.Machine.Sta) in
      let a0 = f (area Dae_sim.Machine.Sta) in
      let cd, cs, co, ad, as_, ao = ratios.contents |> fun (a,b,c,d,e,g) -> (a,b,c,d,e,g) in
      ratios :=
        ( (f (cycles Dae_sim.Machine.Dae) /. c0) :: cd,
          (f (cycles Dae_sim.Machine.Spec) /. c0) :: cs,
          (f (cycles Dae_sim.Machine.Oracle) /. c0) :: co,
          (f (area Dae_sim.Machine.Dae) /. a0) :: ad,
          (f (area Dae_sim.Machine.Spec) /. a0) :: as_,
          (f (area Dae_sim.Machine.Oracle) /. a0) :: ao ))
    (Kernels.paper_suite ());
  let cd, cs, co, ad, as_, ao = !ratios in
  Fmt.pr
    "Harmonic means vs STA — cycles: DAE %.2f SPEC %.2f ORACLE %.2f; area: \
     DAE %.2f SPEC %.2f ORACLE %.2f@."
    (harmonic_mean cd) (harmonic_mean cs) (harmonic_mean co)
    (harmonic_mean ad) (harmonic_mean as_) (harmonic_mean ao);
  Fmt.pr "(paper: cycles 3.2 / 0.51 / 0.48; area 1.16 / 1.42 / 1.36)@."

(* --- Table 2: mis-speculation cost ------------------------------------------- *)

let table2 () =
  Fmt.pr "@.== Table 2: SPEC cycles as the mis-speculation rate changes ==@.";
  Fmt.pr "%-6s" "kernel";
  List.iter (fun r -> Fmt.pr " %8d%%" r) Misspec.rates;
  Fmt.pr " %8s@." "sigma";
  List.iter
    (fun (name, variant) ->
      Fmt.pr "%-6s" name;
      let cycles =
        List.map
          (fun rate ->
            let k = variant rate in
            float_of_int (simulate Dae_sim.Machine.Spec k).Dae_sim.Machine.cycles)
          Misspec.rates
      in
      List.iter (fun c -> Fmt.pr " %9.0f" c) cycles;
      let n = float_of_int (List.length cycles) in
      let mean = List.fold_left ( +. ) 0. cycles /. n in
      let sigma =
        sqrt
          (List.fold_left (fun a c -> a +. ((c -. mean) ** 2.)) 0. cycles /. n)
      in
      Fmt.pr " %8.0f@." sigma)
    [
      ("hist", fun rate -> Misspec.hist ~rate_percent:rate ());
      ("thr", fun rate -> Misspec.thr ~rate_percent:rate ());
      ("mm", fun rate -> Misspec.mm ~rate_percent:rate ());
    ];
  Fmt.pr "(paper: no correlation between rate and cycles; sigma 16-21)@."

(* --- Figure 7: nested control flow overhead ----------------------------------- *)

let fig7 () =
  Fmt.pr
    "@.== Figure 7: SPEC overhead over ORACLE vs poison blocks (nested ifs) \
     ==@.";
  Fmt.pr "%-6s %6s %6s %10s %10s %10s@." "depth" "pblk" "pcall" "perf-ovh"
    "CU-area" "AGU-area";
  List.iter
    (fun depth ->
      let k = Synthetic.workload ~n:400 ~depth () in
      let spec = simulate Dae_sim.Machine.Spec k in
      let oracle = simulate Dae_sim.Machine.Oracle k in
      let pblk, pcall =
        match spec.Dae_sim.Machine.pipeline with
        | Some p ->
          ( Dae_core.Pipeline.poison_block_count p,
            Dae_core.Pipeline.poison_call_count p )
        | None -> (0, 0)
      in
      let pct a b = 100. *. (float_of_int a /. float_of_int b -. 1.) in
      Fmt.pr "%-6d %6d %6d %9.1f%% %9.1f%% %9.1f%%@." depth pblk pcall
        (pct spec.Dae_sim.Machine.cycles oracle.Dae_sim.Machine.cycles)
        (pct spec.Dae_sim.Machine.area.Dae_sim.Area.cu
           oracle.Dae_sim.Machine.area.Dae_sim.Area.cu)
        (pct spec.Dae_sim.Machine.area.Dae_sim.Area.agu
           oracle.Dae_sim.Machine.area.Dae_sim.Area.agu))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Fmt.pr
    "(paper: perf overhead ~0%%; CU area grows <5%% per poison block, <25%% \
     at depth 8; AGU ~0%%)@."

(* --- ablations ------------------------------------------------------------------ *)

let ablation () =
  Fmt.pr "@.== Ablation: store queue size vs SPEC cycles (§8.2.1) ==@.";
  let g = Graph.small ~nodes:128 ~edges:1200 () in
  let k = Kernels.bfs ~graph:g () in
  Fmt.pr "%-6s" "SQ";
  List.iter (fun sq -> Fmt.pr " %8d" sq) [ 2; 4; 8; 16; 32; 64 ];
  Fmt.pr "@.%-6s" "cycles";
  List.iter
    (fun sq ->
      let cfg = { Dae_sim.Config.default with Dae_sim.Config.store_queue_size = sq } in
      Fmt.pr " %8d" (simulate ~cfg Dae_sim.Machine.Spec k).Dae_sim.Machine.cycles)
    [ 2; 4; 8; 16; 32; 64 ];
  Fmt.pr
    "@.(mis-speculated allocations fill a small SQ and stall later loads — \
     the bfs/bc SPEC-vs-ORACLE gap)@.";

  Fmt.pr "@.== Ablation: FIFO latency vs DAE round trip ==@.";
  let k = Kernels.hist () in
  Fmt.pr "%-10s" "fifo lat";
  List.iter (fun l -> Fmt.pr " %8d" l) [ 1; 2; 4; 8 ];
  Fmt.pr "@.%-10s" "DAE";
  List.iter
    (fun l ->
      let cfg = { Dae_sim.Config.default with Dae_sim.Config.fifo_latency = l } in
      Fmt.pr " %8d" (simulate ~cfg Dae_sim.Machine.Dae k).Dae_sim.Machine.cycles)
    [ 1; 2; 4; 8 ];
  Fmt.pr "@.%-10s" "SPEC";
  List.iter
    (fun l ->
      let cfg = { Dae_sim.Config.default with Dae_sim.Config.fifo_latency = l } in
      Fmt.pr " %8d" (simulate ~cfg Dae_sim.Machine.Spec k).Dae_sim.Machine.cycles)
    [ 1; 2; 4; 8 ];
  Fmt.pr
    "@.(the synchronized DAE AGU pays every extra cycle of channel latency \
     per iteration; the speculative AGU hides it)@.";

  Fmt.pr "@.== Ablation: poison-block merging (§5.3) on CU area ==@.";
  Fmt.pr "%-8s %12s %12s %8s@." "kernel" "merged-area" "unmerged" "saved";
  List.iter
    (fun depth ->
      let k = Synthetic.workload ~n:100 ~depth () in
      let area merge =
        let p =
          Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec ~merge
            (k.Kernels.build ())
        in
        (Dae_sim.Area.decoupled p).Dae_sim.Area.cu
      in
      let m = area true and u = area false in
      Fmt.pr "%-8s %12d %12d %7.1f%%@."
        (Fmt.str "nest%d" depth)
        m u
        (100. *. (1. -. (float_of_int m /. float_of_int u))))
    [ 2; 4; 6 ];
  let k = Kernels.mm ~left:40 ~right:40 ~m:200 () in
  let area merge =
    let p =
      Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec ~merge
        (k.Kernels.build ())
    in
    (Dae_sim.Area.decoupled p).Dae_sim.Area.cu
  in
  Fmt.pr "%-8s %12d %12d %7.1f%%@." "mm" (area true) (area false)
    (100. *. (1. -. (float_of_int (area true) /. float_of_int (area false))));

  Fmt.pr "@.== Ablation: vectorized speculative requests (paper §10) ==@.";
  Fmt.pr "%-8s" "width";
  List.iter (fun v -> Fmt.pr " %8d" v) [ 1; 2; 4; 8 ];
  Fmt.pr "@.";
  List.iter
    (fun (name, k) ->
      Fmt.pr "%-8s" name;
      List.iter
        (fun v ->
          let cfg =
            { Dae_sim.Config.default with Dae_sim.Config.vector_width = v }
          in
          Fmt.pr " %8d" (simulate ~cfg Dae_sim.Machine.Spec k).Dae_sim.Machine.cycles)
        [ 1; 2; 4; 8 ];
      Fmt.pr "@.")
    [ ("thr", Kernels.thr ());
      (* six mostly-killed store requests per iteration on one channel:
         exactly the "vector of speculative requests + store mask" shape
         §10 sketches — kills need no memory port, so the channel and kill
         bandwidth are the whole story *)
      ("nest6", Synthetic.workload ~n:500 ~depth:6 ~pass_percent:15 ());
      ("bc", Kernels.bc ~graph:(Graph.small ~nodes:64 ~edges:400 ()) ()) ];
  Fmt.pr
    "(a vector of requests per cycle with a CU store mask lifts the \
     per-channel port and kill limits; the SRAM ports stay scalar — \
     load-port-bound kernels like thr are unaffected)@.";

  Fmt.pr "@.== Ablation: partial if-conversion (§9) ==@.";
  (* a branchy elementwise max: its diamond is pure, so if-conversion
     flattens it to a select and drops two scheduler states *)
  let branchy_max () =
    let open Dae_ir in
    let b = Builder.create ~name:"vmax" ~params:[ "n" ] in
    let (_ : Dae_ir.Types.operand list) =
      Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
          let x = Builder.load b "xa" i in
          let y = Builder.load b "ya" i in
          let c = Builder.cmp b Instr.Sgt x y in
          let m =
            match
              Builder.if_values b c ~tys:[ Dae_ir.Types.I32 ]
                ~then_:(fun _ -> [ x ])
                ~else_:(fun _ -> [ y ])
            with
            | [ m ] -> m
            | _ -> assert false
          in
          Builder.store b "out" ~idx:i ~value:m;
          [])
    in
    Builder.seal b
  in
  let f = branchy_max () in
  let before_blocks = List.length f.Dae_ir.Func.layout in
  let sta_before = Dae_sim.Sta.analyze f in
  let flattened = Dae_ir.If_convert.run f in
  ignore (Dae_ir.Const_fold.run f);
  Dae_ir.Simplify.run f;
  Dae_ir.Verify.check_exn f;
  let sta_after = Dae_sim.Sta.analyze f in
  Fmt.pr
    "vmax: %d -> %d blocks (%d diamond flattened); STA pipeline depth %d -> \
     %d; area %d -> %d@."
    before_blocks
    (List.length f.Dae_ir.Func.layout)
    flattened sta_before.Dae_sim.Sta.pipeline_depth
    sta_after.Dae_sim.Sta.pipeline_depth
    (Dae_sim.Area.sta (branchy_max ())).Dae_sim.Area.total
    (Dae_sim.Area.sta f).Dae_sim.Area.total

(* --- Bechamel micro-benchmarks of the compiler passes --------------------------- *)

let micro () =
  Fmt.pr "@.== Compiler pass micro-benchmarks (Bechamel) ==@.";
  let open Bechamel in
  let open Toolkit in
  let fig6_kernel () = (Kernels.hist ()).Kernels.build () in
  let fig4 () =
    (* the running example used throughout: parse cost included once *)
    (Synthetic.workload ~n:10 ~depth:4 ()).Kernels.build ()
  in
  let tests =
    [
      (* one Test.make per experiment id: the compile work behind each *)
      Test.make ~name:"fig6-spec-compile"
        (Staged.stage (fun () ->
             ignore
               (Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec
                  (fig6_kernel ()))));
      Test.make ~name:"table1-lod-analysis"
        (Staged.stage (fun () -> ignore (Dae_core.Lod.analyze (fig6_kernel ()))));
      Test.make ~name:"table2-dae-compile"
        (Staged.stage (fun () ->
             ignore
               (Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Dae
                  (fig6_kernel ()))));
      Test.make ~name:"fig7-nested-spec-compile"
        (Staged.stage (fun () ->
             ignore
               (Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec
                  (fig4 ()))));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark (Test.make_grouped ~name:"passes" ~fmt:"%s %s" tests) in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Fmt.pr "%-32s %12.1f ns/run@." name est
      | _ -> Fmt.pr "%-32s (no estimate)@." name)
    results

let () =
  let sections =
    match Array.to_list Sys.argv with
    | _ :: rest when rest <> [] -> rest
    | _ -> [ "fig6"; "table1"; "table2"; "fig7"; "ablation"; "micro" ]
  in
  List.iter
    (fun s ->
      match s with
      | "fig6" -> fig6 ()
      | "table1" -> table1 ()
      | "table2" -> table2 ()
      | "fig7" -> fig7 ()
      | "ablation" -> ablation ()
      | "micro" -> micro ()
      | other -> Fmt.epr "unknown section %s@." other)
    sections
