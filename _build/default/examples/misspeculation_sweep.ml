(* Mis-speculation cost sweep (the paper's Table 2 as an interactive
   example): instrument thr/hist/mm inputs from 0% to 100% kill rate and
   watch SPEC cycle counts stay flat — there are no replays, so a wrong
   guess costs nothing beyond its (pre-allocated) store-queue slot.

   The second half shows where that slot *does* start to matter: shrink
   the store queue and the mis-speculation rate becomes visible, which is
   exactly the paper's §8.2.1 explanation of the bfs/bc gap.

     dune exec examples/misspeculation_sweep.exe *)

open Dae_workloads

let run ?cfg (k : Kernels.t) =
  let r =
    Dae_sim.Machine.simulate ?cfg Dae_sim.Machine.Spec
      (k.Kernels.build ())
      ~invocations:(k.Kernels.invocations ())
      ~mem:(k.Kernels.init_mem ())
  in
  (match k.Kernels.check r.Dae_sim.Machine.memory with
  | Ok () -> ()
  | Error m -> Fmt.failwith "%s: %s" k.Kernels.name m);
  r

let () =
  Fmt.pr "== SPEC cycles vs targeted mis-speculation rate ==@.";
  Fmt.pr "%-6s" "rate";
  List.iter (fun r -> Fmt.pr " %8d%%" r) Misspec.rates;
  Fmt.pr "@.";
  List.iter
    (fun (name, make) ->
      Fmt.pr "%-6s" name;
      List.iter
        (fun rate ->
          let r = run (make rate) in
          Fmt.pr " %9d" r.Dae_sim.Machine.cycles)
        Misspec.rates;
      Fmt.pr "@.%-6s" "";
      List.iter
        (fun rate ->
          let r = run (make rate) in
          Fmt.pr "  (%5.0f%%)" (100. *. r.Dae_sim.Machine.misspec_rate))
        Misspec.rates;
      Fmt.pr "  <- measured rate@.")
    [
      ("hist", fun rate -> Misspec.hist ~rate_percent:rate ());
      ("thr", fun rate -> Misspec.thr ~rate_percent:rate ());
      ("mm", fun rate -> Misspec.mm ~rate_percent:rate ());
    ];

  Fmt.pr
    "@.== ...until the store queue is too small to hold the doomed \
     allocations ==@.";
  Fmt.pr "%-14s %10s %10s %10s@." "store queue" "0% kill" "50% kill"
    "100% kill";
  List.iter
    (fun sq ->
      let cfg =
        { Dae_sim.Config.default with Dae_sim.Config.store_queue_size = sq }
      in
      let cycles rate = (run ~cfg (Misspec.hist ~rate_percent:rate ())).Dae_sim.Machine.cycles in
      Fmt.pr "%-14d %10d %10d %10d@." sq (cycles 0) (cycles 50) (cycles 100))
    [ 1; 2; 4; 32 ]
