(* Graph analytics on a synthetic scale-matched stand-in for the paper's
   email-Eu-core graph: BFS, SSSP (Bellman-Ford rounds) and the forward
   pass of betweenness centrality, each compiled for all four
   architectures. This is the paper's headline use case — irregular,
   data-dependent memory accesses whose guards load the very arrays they
   update.

     dune exec examples/graph_analytics.exe            # small graph
     dune exec examples/graph_analytics.exe -- full    # paper scale *)

open Dae_workloads

let () =
  let full = Array.length Sys.argv > 1 && Sys.argv.(1) = "full" in
  let graph =
    if full then Graph.email_eu_core_like ()
    else Graph.generate ~seed:0xBEEF ~nodes:128 ~edges:1024 ~max_weight:9
  in
  Fmt.pr "graph: %d nodes, %d edges%s@." graph.Graph.nodes (Graph.edges graph)
    (if full then " (email-Eu-core scale)" else "");
  let kernels =
    [ Kernels.bfs ~graph (); Kernels.sssp ~graph ~max_rounds:5 ();
      Kernels.bc ~graph () ]
  in
  List.iter
    (fun (k : Kernels.t) ->
      Fmt.pr "@.%s: %s@." k.Kernels.name k.Kernels.description;
      let f = k.Kernels.build () in
      let sta = ref 0 in
      List.iter
        (fun arch ->
          let r =
            Dae_sim.Machine.simulate arch f
              ~invocations:(k.Kernels.invocations ())
              ~mem:(k.Kernels.init_mem ())
          in
          (match k.Kernels.check r.Dae_sim.Machine.memory with
          | Ok () -> ()
          | Error msg -> Fmt.failwith "%s: %s" k.Kernels.name msg);
          if arch = Dae_sim.Machine.Sta then sta := r.Dae_sim.Machine.cycles;
          Fmt.pr "  %-7s %9d cycles (%.2fx vs STA)  misspec %.0f%%@."
            (Dae_sim.Machine.arch_name arch)
            r.Dae_sim.Machine.cycles
            (float_of_int !sta /. float_of_int r.Dae_sim.Machine.cycles)
            (100. *. r.Dae_sim.Machine.misspec_rate))
        [ Dae_sim.Machine.Sta; Dae_sim.Machine.Dae; Dae_sim.Machine.Spec;
          Dae_sim.Machine.Oracle ];
      (* the compiled artefacts are ordinary IR: inspect the statistics *)
      let p =
        Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec f
      in
      Fmt.pr "  %a@." Dae_core.Pipeline.pp_summary p)
    kernels
