examples/quickstart.mli:
