examples/prefetcher_isa.ml: Dae_core Dae_ir Dae_workloads Fmt Kernels
