examples/nested_control.ml: Dae_core Dae_ir Dae_sim Dae_workloads Fmt Kernels List Synthetic
