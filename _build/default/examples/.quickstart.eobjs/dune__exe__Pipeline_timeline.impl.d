examples/pipeline_timeline.ml: Array Builder Dae_core Dae_ir Dae_sim Exec Fmt Instr Interp List String Timing Trace Types
