examples/pipeline_timeline.mli:
