examples/nested_control.mli:
