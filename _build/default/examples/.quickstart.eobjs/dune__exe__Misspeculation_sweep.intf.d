examples/misspeculation_sweep.mli:
