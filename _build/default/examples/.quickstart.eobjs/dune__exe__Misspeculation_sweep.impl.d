examples/misspeculation_sweep.ml: Dae_sim Dae_workloads Fmt Kernels List Misspec
