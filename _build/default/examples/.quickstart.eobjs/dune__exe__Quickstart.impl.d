examples/quickstart.ml: Array Builder Dae_core Dae_ir Dae_sim Fmt Instr Interp List Printer Types
