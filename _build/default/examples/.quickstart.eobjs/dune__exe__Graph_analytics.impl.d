examples/graph_analytics.ml: Array Dae_core Dae_sim Dae_workloads Fmt Graph Kernels List Sys
