examples/prefetcher_isa.mli:
