(* CPU prefetcher lowering (the paper's §7.1 application): compile the
   saturating histogram for a DeSC-style decoupled prefetcher and print the
   supply/compute slices over the five-instruction ISA extension of
   Ham et al. (store_addr, load_produce, store_val, load_consume,
   store_inv), then the §7.2 stream-dataflow CGRA form with SD_Clean_Port.

     dune exec examples/prefetcher_isa.exe *)

open Dae_workloads

let () =
  let k = Kernels.hist ~n:100 ~buckets:16 ~cap:12 () in
  let f = k.Kernels.build () in
  Fmt.pr "== kernel ==@.%a@." Dae_ir.Printer.pp_func f;
  let spec = Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec f in
  Fmt.pr "== DeSC prefetcher slices (§7.1) ==@.%a@."
    Dae_core.Desc_backend.pp
    (Dae_core.Desc_backend.lower spec);
  Fmt.pr "== stream-dataflow CGRA form (§7.2) ==@.%a@."
    Dae_core.Cgra_backend.pp
    (Dae_core.Cgra_backend.lower spec);
  (* contrast: without speculation the supply slice must consume *)
  let dae = Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Dae f in
  let l = Dae_core.Desc_backend.lower dae in
  Fmt.pr
    "== without speculation, the supply slice synchronizes (%d \
     load_consume) and never invalidates (%d store_inv) ==@."
    (Dae_core.Desc_backend.count_opcode l.Dae_core.Desc_backend.supply
       "load_consume")
    (Dae_core.Desc_backend.count_opcode l.Dae_core.Desc_backend.compute
       "store_inv")
