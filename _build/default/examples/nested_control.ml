(* Nested control flow (the paper's §8.3.1 synthetic template, Figure 7):
   each nesting level adds one poison block and level-many poison calls
   (n(n+1)/2 in total). This example prints the transformed CU so the
   poison placement produced by Algorithms 2+3 is visible, then sweeps the
   depth to show cost scaling.

     dune exec examples/nested_control.exe *)

open Dae_workloads

let () =
  (* show the machinery at depth 3 *)
  let k = Synthetic.workload ~n:50 ~depth:3 () in
  let f = k.Kernels.build () in
  Fmt.pr "== nested template, depth 3 ==@.%a@." Dae_ir.Printer.pp_func f;
  let p = Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec f in
  Fmt.pr "== SPEC CU (note the poison blocks on the else edges) ==@.%a@."
    Dae_ir.Printer.pp_func p.Dae_core.Pipeline.cu;
  Fmt.pr "%a@.@." Dae_core.Pipeline.pp_summary p;

  Fmt.pr "== scaling with nesting depth ==@.";
  Fmt.pr "%-6s %6s %6s %10s %10s@." "depth" "pblk" "pcall" "SPEC" "ORACLE";
  List.iter
    (fun depth ->
      let k = Synthetic.workload ~n:300 ~depth () in
      let f = k.Kernels.build () in
      let run arch =
        Dae_sim.Machine.simulate arch f
          ~invocations:(k.Kernels.invocations ())
          ~mem:(k.Kernels.init_mem ())
      in
      let spec = run Dae_sim.Machine.Spec in
      let oracle = run Dae_sim.Machine.Oracle in
      (match k.Kernels.check spec.Dae_sim.Machine.memory with
      | Ok () -> ()
      | Error m -> Fmt.failwith "depth %d: %s" depth m);
      let pblk, pcall =
        match spec.Dae_sim.Machine.pipeline with
        | Some p ->
          ( Dae_core.Pipeline.poison_block_count p,
            Dae_core.Pipeline.poison_call_count p )
        | None -> (0, 0)
      in
      Fmt.pr "%-6d %6d %6d %10d %10d@." depth pblk pcall
        spec.Dae_sim.Machine.cycles oracle.Dae_sim.Machine.cycles)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]
