(* Pipeline timelines (the paper's Figure 2): when does each channel event
   of each iteration retire, with and without speculation?

   Figure 2(a): decoupled address generation — the AGU streams requests,
   one iteration per cycle. Figure 2(b): non-decoupled — the AGU must wait
   for each iteration's load value before it can decide whether to send
   the store address, so iterations serialize on the round trip.

     dune exec examples/pipeline_timeline.exe *)

open Dae_ir
open Dae_sim

let timeline mode =
  let f = (* `if (A[i] > 0) A[i] = 0` over 6 elements *)
    let b = Builder.create ~name:"fig2" ~params:[ "n" ] in
    let (_ : Types.operand list) =
      Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
          let v = Builder.load b "A" i in
          let c = Builder.cmp b Instr.Sgt v (Builder.int 0) in
          Builder.if_ b c
            ~then_:(fun b -> Builder.store b "A" ~idx:i ~value:(Builder.int 0))
            ();
          [])
    in
    Builder.seal b
  in
  let p = Dae_core.Pipeline.compile ~mode f in
  let mem = Interp.Memory.create [ ("A", [| 3; -1; 4; -1 ; 5; -9 |]) ] in
  let r = Exec.run p ~args:[ ("n", Types.Vint 6) ] ~mem in
  let subscribers =
    List.map
      (fun (m, subs) ->
        (m, List.map (function `Agu -> Trace.Agu | `Cu -> Trace.Cu) subs))
      p.Dae_core.Pipeline.load_subscribers
  in
  let t = Timing.run ~subscribers r.Exec.agu_trace r.Exec.cu_trace in
  (r, t)

let show name (tr : Trace.unit_trace) (retire : int array) ~width =
  Fmt.pr "%s@." name;
  Array.iteri
    (fun k (e : Trace.entry) ->
      let cycle = retire.(k) in
      let bar =
        String.concat ""
          (List.init (min cycle width) (fun _ -> "."))
        ^ "#"
      in
      Fmt.pr "  i%-2d %-24s |%-*s| t=%d@." e.Trace.iter
        (Fmt.str "%a" Trace.pp_ev e.Trace.ev)
        (width + 1) bar cycle)
    tr.Trace.entries

let () =
  Fmt.pr
    "== Figure 2(b): DAE without speculation — the AGU serializes on the \
     value round trip ==@.";
  let r, t = timeline Dae_core.Pipeline.Dae in
  show "AGU" r.Exec.agu_trace t.Timing.agu_retire ~width:60;
  Fmt.pr "  total: %d cycles for 6 iterations@.@." t.Timing.cycles;

  Fmt.pr
    "== Figure 2(a)/1(c): with speculation — requests stream at II=1 ==@.";
  let r, t = timeline Dae_core.Pipeline.Spec in
  show "AGU" r.Exec.agu_trace t.Timing.agu_retire ~width:60;
  show "CU" r.Exec.cu_trace t.Timing.cu_retire ~width:60;
  Fmt.pr "  total: %d cycles for 6 iterations@." t.Timing.cycles
