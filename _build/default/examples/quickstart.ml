(* Quickstart: build the paper's running example `if (A[i] > 0) A[i] = 0`,
   watch the speculation transformation restore decoupling, and run all
   four evaluated architectures on it.

     dune exec examples/quickstart.exe *)

open Dae_ir

let () =
  (* 1. Build the kernel with the structured IR builder. *)
  let b = Builder.create ~name:"running_example" ~params:[ "n" ] in
  let (_ : Types.operand list) =
    Builder.counted_loop b ~n:(Builder.param b "n") (fun b ~i ~carried:_ ->
        let v = Builder.load b "A" i in
        let above = Builder.cmp b Instr.Sgt v (Builder.int 0) in
        Builder.if_ b above
          ~then_:(fun b -> Builder.store b "A" ~idx:i ~value:(Builder.int 0))
          ();
        [])
  in
  let f = Builder.seal b in
  Fmt.pr "== original kernel ==@.%a@." Printer.pp_func f;

  (* 2. The loss-of-decoupling analysis (paper §4): the store is
     control-dependent on a branch that loads the stored array. *)
  let lod = Dae_core.Lod.analyze f in
  Fmt.pr "== LoD analysis ==@.%a@." Dae_core.Lod.pp lod;

  (* 3. Plain DAE decoupling (§3.2) loses decoupling: the AGU has to
     consume the load value to decide whether to send the store address. *)
  let dae = Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Dae f in
  Fmt.pr "== DAE (no speculation): AGU is synchronized ==@.%a@."
    Printer.pp_func dae.Dae_core.Pipeline.agu;

  (* 4. With speculation (§5) the AGU runs free and the CU poisons
     mis-speculations — the paper's Figure 1(c). *)
  let spec = Dae_core.Pipeline.compile ~mode:Dae_core.Pipeline.Spec f in
  Fmt.pr "== SPEC: AGU fully decoupled ==@.%a@." Printer.pp_func
    spec.Dae_core.Pipeline.agu;
  Fmt.pr "== SPEC: CU with poison calls ==@.%a@." Printer.pp_func
    spec.Dae_core.Pipeline.cu;

  (* 5. Simulate. Every decoupled run is checked against the sequential
     interpreter (final memory + commit order) and the AGU/CU streams are
     checked against each other (Lemma 6.1). *)
  let n = 64 in
  let data =
    Array.init n (fun k -> if k mod 3 = 0 then k + 1 else -k)
  in
  Fmt.pr "== simulation (%d iterations) ==@." n;
  List.iter
    (fun arch ->
      let r =
        Dae_sim.Machine.simulate arch f
          ~invocations:[ [ ("n", Types.Vint n) ] ]
          ~mem:(Interp.Memory.create [ ("A", data) ])
      in
      Fmt.pr "  %-7s %6d cycles  (mis-speculation %.0f%%, area %d ALMs)@."
        (Dae_sim.Machine.arch_name arch)
        r.Dae_sim.Machine.cycles
        (100. *. r.Dae_sim.Machine.misspec_rate)
        r.Dae_sim.Machine.area.Dae_sim.Area.total)
    [ Dae_sim.Machine.Sta; Dae_sim.Machine.Dae; Dae_sim.Machine.Spec;
      Dae_sim.Machine.Oracle ]
